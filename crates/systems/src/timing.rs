//! Shared timing helpers: framework factors and scatter contention.

use embeddings::TableBag;
use memsim::SimTime;

/// Effective throughput of *conflicting* atomic row updates during the
/// GPU's gradient scatter, in bytes/second. When many duplicated gradients
/// target the same hot row, the hardware serializes them; ~750 MB/s per
/// conflict chain corresponds to ≈0.7 µs per conflicting 512 B row — the
/// calibration that reproduces Table I's ≈2.4 ms locality-dependent
/// slowdown of the multi-GPU system.
pub const ATOMIC_CONFLICT_BW: f64 = 750.0e6;

/// The largest number of times any single row is referenced in `bag` —
/// the length of the worst serialized atomic-update chain.
///
/// Sort-and-scan over a scratch copy of the IDs: the longest equal run of
/// the sorted slice is the highest duplicate count, with no per-call hash
/// map (this runs once per table per simulated iteration).
pub fn max_dup_count(bag: &TableBag) -> u64 {
    let mut ids = bag.ids().to_vec();
    if ids.is_empty() {
        return 0;
    }
    ids.sort_unstable();
    let mut max = 1u64;
    let mut run = 1u64;
    for pair in ids.windows(2) {
        if pair[0] == pair[1] {
            run += 1;
            max = max.max(run);
        } else {
            run = 1;
        }
    }
    max
}

/// Extra GPU time for hot-row scatter contention: the worst chain of
/// `max_dup` conflicting updates to one `dim`-wide row serializes at
/// [`ATOMIC_CONFLICT_BW`].
pub fn contention_time(max_dup: u64, dim: usize) -> SimTime {
    if max_dup <= 1 {
        return SimTime::ZERO;
    }
    SimTime::from_secs((max_dup - 1) as f64 * dim as f64 * 4.0 / ATOMIC_CONFLICT_BW)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_dup_counts_repetitions() {
        let bag = TableBag::from_samples(&[vec![1, 2, 1], vec![1, 3]]);
        assert_eq!(max_dup_count(&bag), 3);
        let bag = TableBag::from_samples(&[vec![1, 2, 3]]);
        assert_eq!(max_dup_count(&bag), 1);
        let bag = TableBag::from_samples(&[vec![]]);
        assert_eq!(max_dup_count(&bag), 0);
    }

    #[test]
    fn contention_grows_with_duplicates() {
        assert_eq!(contention_time(0, 128), SimTime::ZERO);
        assert_eq!(contention_time(1, 128), SimTime::ZERO);
        let a = contention_time(10, 128);
        let b = contention_time(100, 128);
        assert!(b > a * 9.0);
        // ~2000 conflicts on a 512 B row ≈ 1.4 ms (order of the Table I
        // locality delta).
        let c = contention_time(2000, 128);
        assert!((c.as_millis() - 1.36).abs() < 0.2, "{c}");
    }
}
