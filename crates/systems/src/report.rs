//! The [`TrainingSystem`] interface and its [`SystemReport`] output.

use embeddings::SparseBatch;
use memsim::pipeline::{PipelineSim, Resource, StageDef, StageTimes};
use memsim::{EnergyReport, PowerModel, SimTime};
use scratchpipe::ScratchError;
use serde::{Deserialize, Serialize};

/// Errors from system simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// Error from the ScratchPipe runtime.
    Scratch(ScratchError),
    /// Workload/system shape inconsistency.
    Shape(String),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Scratch(e) => write!(f, "scratchpipe runtime: {e}"),
            SystemError::Shape(s) => write!(f, "shape error: {s}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<ScratchError> for SystemError {
    fn from(e: ScratchError) -> Self {
        SystemError::Scratch(e)
    }
}

/// A simulated RecSys training system.
pub trait TrainingSystem {
    /// Display name of the design point (e.g. `"ScratchPipe"`).
    fn name(&self) -> &'static str;

    /// Simulates training over `batches`, returning timing/energy/cache
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns a [`SystemError`] on shape mismatches or runtime failures
    /// (e.g. scratchpad capacity exhaustion).
    fn simulate(&mut self, batches: &[SparseBatch]) -> Result<SystemReport, SystemError>;
}

/// Timing, energy and cache statistics of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemReport {
    /// System display name.
    pub system: String,
    /// Number of mini-batches simulated.
    pub iterations: usize,
    /// Stage names, in execution order.
    pub stage_names: Vec<String>,
    /// The hardware resource each stage occupies.
    pub stage_resources: Vec<Resource>,
    /// Per-iteration per-stage latencies.
    pub stage_times: Vec<Vec<SimTime>>,
    /// Steady-state time per training iteration (the paper's "Iter. Time").
    pub iteration_time: SimTime,
    /// End-to-end wall clock of the simulated run.
    pub makespan: SimTime,
    /// Energy per iteration at steady state.
    pub energy_per_iteration: EnergyReport,
    /// Cache hit rate, where the system has a cache.
    pub hit_rate: Option<f64>,
    /// Steady-state mean latency per stage (same order as `stage_names`).
    pub breakdown: Vec<(String, SimTime)>,
    /// Iterations skipped (cold cache) when averaging steady-state values.
    pub steady_skip: usize,
}

impl SystemReport {
    /// Builds a report for a system whose stages run **sequentially**
    /// within each iteration (the paper's baselines and straw-man):
    /// iteration time is the sum of its stage times.
    pub fn from_sequential_stages(
        system: impl Into<String>,
        stage_names: Vec<String>,
        stage_resources: Vec<Resource>,
        stage_times: Vec<Vec<SimTime>>,
        power: &PowerModel,
        steady_skip: usize,
    ) -> Self {
        assert_eq!(stage_names.len(), stage_resources.len());
        let iterations = stage_times.len();
        let totals: Vec<SimTime> = stage_times
            .iter()
            .map(|t| t.iter().copied().sum())
            .collect();
        let makespan: SimTime = totals.iter().copied().sum();
        let skip = steady_skip.min(iterations.saturating_sub(1));
        let tail = &totals[skip..];
        let iteration_time = if tail.is_empty() {
            SimTime::ZERO
        } else {
            tail.iter().copied().sum::<SimTime>() / tail.len() as f64
        };
        let breakdown = steady_breakdown(&stage_names, &stage_times, skip);
        let (cpu_busy, gpu_busy) = steady_busy(&stage_resources, &breakdown);
        let energy_per_iteration = power.energy(iteration_time, cpu_busy, gpu_busy);
        SystemReport {
            system: system.into(),
            iterations,
            stage_names,
            stage_resources,
            stage_times,
            iteration_time,
            makespan,
            energy_per_iteration,
            hit_rate: None,
            breakdown,
            steady_skip: skip,
        }
    }

    /// Builds a report for a system whose stages are **pipelined** across
    /// iterations (ScratchPipe): iteration time is the steady-state
    /// initiation interval under resource contention.
    pub fn from_pipelined_stages(
        system: impl Into<String>,
        stage_names: Vec<String>,
        stage_resources: Vec<Resource>,
        stage_times: Vec<Vec<SimTime>>,
        power: &PowerModel,
        steady_skip: usize,
    ) -> Self {
        assert_eq!(stage_names.len(), stage_resources.len());
        let iterations = stage_times.len();
        let defs: Vec<StageDef> = stage_names
            .iter()
            .zip(&stage_resources)
            .map(|(n, &r)| StageDef::new(n.clone(), r))
            .collect();
        let sim = PipelineSim::new(defs);
        let iters: Vec<StageTimes> = stage_times.iter().map(|t| StageTimes(t.clone())).collect();
        let sched = sim.schedule(&iters);
        let iteration_time = if iterations == 0 {
            SimTime::ZERO
        } else {
            sched.steady_state_iteration_time()
        };
        let skip = steady_skip.min(iterations.saturating_sub(1));
        let breakdown = steady_breakdown(&stage_names, &stage_times, skip);
        // Busy time per iteration from the schedule's aggregate residency.
        let n = iterations.max(1) as f64;
        let cpu_busy = (sched.resource_busy[Resource::CpuMem.index()]
            + sched.resource_busy[Resource::Host.index()])
            / n;
        let gpu_busy = sched.resource_busy[Resource::Gpu.index()] / n;
        let energy_per_iteration = power.energy(iteration_time, cpu_busy, gpu_busy);
        SystemReport {
            system: system.into(),
            iterations,
            stage_names,
            stage_resources,
            stage_times,
            iteration_time,
            makespan: sched.makespan,
            energy_per_iteration,
            hit_rate: None,
            breakdown,
            steady_skip: skip,
        }
    }

    /// Speedup of `self` over `other` (>1 means `self` is faster).
    pub fn speedup_over(&self, other: &SystemReport) -> f64 {
        other.iteration_time / self.iteration_time
    }

    /// Sums the steady-state breakdown over named stage groups — e.g. the
    /// paper's Figure 5 grouping into
    /// `{CPU embedding forward, CPU embedding backward, GPU}`.
    ///
    /// # Panics
    ///
    /// Panics if a stage index is out of range.
    pub fn grouped_breakdown(&self, groups: &[(&str, &[usize])]) -> Vec<(String, SimTime)> {
        groups
            .iter()
            .map(|(name, idxs)| {
                let sum = idxs.iter().map(|&i| self.breakdown[i].1).sum();
                ((*name).to_owned(), sum)
            })
            .collect()
    }
}

fn steady_breakdown(
    stage_names: &[String],
    stage_times: &[Vec<SimTime>],
    skip: usize,
) -> Vec<(String, SimTime)> {
    let tail = &stage_times[skip.min(stage_times.len())..];
    stage_names
        .iter()
        .enumerate()
        .map(|(s, name)| {
            let mean = if tail.is_empty() {
                SimTime::ZERO
            } else {
                tail.iter().map(|t| t[s]).sum::<SimTime>() / tail.len() as f64
            };
            (name.clone(), mean)
        })
        .collect()
}

fn steady_busy(resources: &[Resource], breakdown: &[(String, SimTime)]) -> (SimTime, SimTime) {
    let mut cpu = SimTime::ZERO;
    let mut gpu = SimTime::ZERO;
    for (r, (_, t)) in resources.iter().zip(breakdown) {
        match r {
            Resource::CpuMem | Resource::Host => cpu += *t,
            Resource::Gpu => gpu += *t,
            _ => {}
        }
    }
    (cpu, gpu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn sequential_report_sums_stages() {
        let power = PowerModel::isca_paper();
        let r = SystemReport::from_sequential_stages(
            "test",
            names(&["a", "b"]),
            vec![Resource::CpuMem, Resource::Gpu],
            vec![vec![ms(10.0), ms(5.0)]; 4],
            &power,
            0,
        );
        assert!((r.iteration_time.as_millis() - 15.0).abs() < 1e-9);
        assert!((r.makespan.as_millis() - 60.0).abs() < 1e-9);
        assert_eq!(r.breakdown.len(), 2);
        assert!((r.breakdown[0].1.as_millis() - 10.0).abs() < 1e-9);
        assert!(r.energy_per_iteration.total_joules() > 0.0);
    }

    #[test]
    fn pipelined_report_overlaps_stages() {
        let power = PowerModel::isca_paper();
        let stage_times = vec![vec![ms(10.0), ms(10.0)]; 60];
        let seq = SystemReport::from_sequential_stages(
            "seq",
            names(&["a", "b"]),
            vec![Resource::CpuMem, Resource::Gpu],
            stage_times.clone(),
            &power,
            5,
        );
        let pipe = SystemReport::from_pipelined_stages(
            "pipe",
            names(&["a", "b"]),
            vec![Resource::CpuMem, Resource::Gpu],
            stage_times,
            &power,
            5,
        );
        assert!((seq.iteration_time.as_millis() - 20.0).abs() < 1e-6);
        assert!((pipe.iteration_time.as_millis() - 10.0).abs() < 0.5);
        assert!((pipe.speedup_over(&seq) - 2.0).abs() < 0.1);
    }

    #[test]
    fn steady_skip_excludes_cold_start() {
        let power = PowerModel::isca_paper();
        let mut times = vec![vec![ms(100.0)]; 2];
        times.extend(vec![vec![ms(10.0)]; 8]);
        let r = SystemReport::from_sequential_stages(
            "t",
            names(&["a"]),
            vec![Resource::CpuMem],
            times,
            &power,
            2,
        );
        assert!((r.iteration_time.as_millis() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn grouped_breakdown_sums_indices() {
        let power = PowerModel::isca_paper();
        let r = SystemReport::from_sequential_stages(
            "t",
            names(&["a", "b", "c"]),
            vec![Resource::CpuMem, Resource::Gpu, Resource::CpuMem],
            vec![vec![ms(1.0), ms(2.0), ms(3.0)]; 3],
            &power,
            0,
        );
        let g = r.grouped_breakdown(&[("cpu", &[0, 2]), ("gpu", &[1])]);
        assert!((g[0].1.as_millis() - 4.0).abs() < 1e-9);
        assert!((g[1].1.as_millis() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_handled() {
        let power = PowerModel::isca_paper();
        let r = SystemReport::from_sequential_stages(
            "t",
            names(&["a"]),
            vec![Resource::CpuMem],
            vec![],
            &power,
            0,
        );
        assert_eq!(r.iterations, 0);
        assert_eq!(r.iteration_time, SimTime::ZERO);
    }

    #[test]
    fn system_error_display() {
        let e = SystemError::Shape("bad".to_owned());
        assert!(e.to_string().contains("bad"));
        let e: SystemError = ScratchError::InvalidConfig {
            detail: "x".to_owned(),
        }
        .into();
        assert!(e.to_string().contains("scratchpipe"));
    }
}
