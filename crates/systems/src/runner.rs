//! One-call experiment execution: configuration → trace → system → report.

use embeddings::{EmbeddingTable, SparseBatch};
use memsim::SystemSpec;
use scratchpipe::runtime::train_direct;
use scratchpipe::EvictionPolicy;
use serde::{Deserialize, Serialize};
use tracegen::{HotOracle, LocalityProfile, TraceGenerator};

use crate::backend::DlrmBackend;
use crate::hybrid::HybridCpuGpu;
use crate::multi_gpu::MultiGpuSystem;
use crate::report::{SystemError, SystemReport, TrainingSystem};
use crate::scratchpipe_sys::{CacheMode, ScratchPipeSystem};
use crate::shape::ModelShape;
use crate::static_cache::StaticCacheSystem;

/// The five design points of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Baseline hybrid CPU-GPU, no cache (Figure 4(a)).
    Hybrid,
    /// Static top-N GPU embedding cache (Figure 4(b), Yin et al.).
    StaticCache,
    /// Dynamic cache without pipelining (§IV-B).
    StrawMan,
    /// Full pipelined ScratchPipe (§IV-C).
    ScratchPipe,
    /// 8-GPU table-parallel GPU-only system (§VI-F).
    MultiGpu8,
}

impl SystemKind {
    /// The four single-node design points of Figure 13, in paper order.
    pub const FIGURE13: [SystemKind; 4] = [
        SystemKind::Hybrid,
        SystemKind::StaticCache,
        SystemKind::StrawMan,
        SystemKind::ScratchPipe,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Hybrid => "Hybrid CPU-GPU",
            SystemKind::StaticCache => "Static cache",
            SystemKind::StrawMan => "Straw-man",
            SystemKind::ScratchPipe => "ScratchPipe",
            SystemKind::MultiGpu8 => "8-GPU (GPU-only)",
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything one experiment run needs.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Workload/model shape.
    pub shape: ModelShape,
    /// Trace locality regime.
    pub profile: LocalityProfile,
    /// GPU cache size as a fraction of each table (cached systems).
    pub cache_fraction: f64,
    /// Mini-batches to simulate.
    pub iterations: usize,
    /// Trace seed.
    pub seed: u64,
    /// Single-GPU node hardware.
    pub spec: SystemSpec,
    /// Eviction policy for the dynamic cache systems.
    pub policy: EvictionPolicy,
}

impl ExperimentConfig {
    /// Paper-scale configuration (8×10 M×128, batch 2048) — used by the
    /// figure benches.
    pub fn paper(profile: LocalityProfile, cache_fraction: f64, iterations: usize) -> Self {
        ExperimentConfig {
            shape: ModelShape::paper_default(),
            profile,
            cache_fraction,
            iterations,
            seed: 0x15CA,
            spec: SystemSpec::isca_paper(),
            policy: EvictionPolicy::Lru,
        }
    }

    /// A scaled-down configuration (4 tables × 50 K rows, batch 128, thin
    /// MLPs) for fast tests and examples; same code paths, less work.
    pub fn scaled_down(profile: LocalityProfile, cache_fraction: f64, iterations: usize) -> Self {
        let dlrm = dlrm::DlrmConfig {
            dense_dim: 13,
            bottom_widths: vec![13, 64, 32],
            top_widths: vec![dlrm::interaction::output_dim(4, 32), 64, 1],
            emb_dim: 32,
            num_tables: 4,
        };
        ExperimentConfig {
            shape: ModelShape {
                num_tables: 4,
                rows_per_table: 50_000,
                dim: 32,
                lookups_per_sample: 8,
                batch_size: 128,
                dlrm,
            },
            profile,
            cache_fraction,
            iterations,
            seed: 0x15CA,
            spec: SystemSpec::isca_paper(),
            policy: EvictionPolicy::Lru,
        }
    }

    /// Generates this experiment's trace (deterministic in the seed).
    pub fn batches(&self) -> Vec<SparseBatch> {
        TraceGenerator::new(self.shape.trace_config(self.profile, self.seed))
            .take_batches(self.iterations)
    }

    /// The popularity oracle matching [`ExperimentConfig::batches`].
    pub fn oracle(&self) -> HotOracle {
        TraceGenerator::new(self.shape.trace_config(self.profile, self.seed)).hot_oracle()
    }
}

/// Builds the requested system and simulates this experiment's trace.
///
/// # Errors
///
/// Propagates shape/runtime errors from the system.
pub fn run_system(kind: SystemKind, cfg: &ExperimentConfig) -> Result<SystemReport, SystemError> {
    let batches = cfg.batches();
    match kind {
        SystemKind::Hybrid => HybridCpuGpu::new(cfg.shape.clone(), cfg.spec).simulate(&batches),
        SystemKind::StaticCache => StaticCacheSystem::new(
            cfg.shape.clone(),
            cfg.cache_fraction,
            cfg.oracle(),
            cfg.spec,
        )
        .simulate(&batches),
        SystemKind::StrawMan => dynamic_cache_system(cfg, CacheMode::Sequential).simulate(&batches),
        SystemKind::ScratchPipe => {
            dynamic_cache_system(cfg, CacheMode::Pipelined).simulate(&batches)
        }
        SystemKind::MultiGpu8 => {
            MultiGpuSystem::new(cfg.shape.clone(), SystemSpec::p3_16xlarge()).simulate(&batches)
        }
    }
}

/// Builds a ScratchPipe/straw-man system for `cfg`, pre-warmed to the
/// steady-state cache content (the hottest rows of each table, as a long
/// warm-up under any recency policy would converge to).
fn dynamic_cache_system(cfg: &ExperimentConfig, mode: CacheMode) -> ScratchPipeSystem {
    let sys = ScratchPipeSystem::new(cfg.shape.clone(), cfg.cache_fraction, mode, cfg.spec)
        .with_policy(cfg.policy);
    let slots = sys.slots_per_table() as u64;
    let gen = TraceGenerator::new(cfg.shape.trace_config(cfg.profile, cfg.seed));
    let hot: Vec<Vec<u64>> = (0..cfg.shape.num_tables)
        .map(|t| gen.hot_rows(t, slots))
        .collect();
    sys.with_prewarm(hot)
}

/// Functionally trains the experiment's model under the given system and
/// returns the final `(embedding tables, dense backend, losses)`. Every
/// system performs identical SGD updates — asserted by the cross-system
/// equivalence tests.
///
/// # Errors
///
/// Propagates runtime errors (e.g. scratchpad capacity exhaustion).
///
/// # Panics
///
/// Panics if the shape fails validation.
pub fn train_functional(
    kind: SystemKind,
    cfg: &ExperimentConfig,
    lr: f32,
) -> Result<(Vec<EmbeddingTable>, DlrmBackend, Vec<f32>), SystemError> {
    cfg.shape.validate().map_err(SystemError::Shape)?;
    let batches = cfg.batches();
    let tables: Vec<EmbeddingTable> = (0..cfg.shape.num_tables)
        .map(|t| EmbeddingTable::seeded(cfg.shape.rows_per_table as usize, cfg.shape.dim, t as u64))
        .collect();
    let backend = DlrmBackend::new(&cfg.shape.dlrm, lr, cfg.seed);
    match kind {
        // The baselines and the multi-GPU system perform SGD in plain
        // batch order; their functional semantics are direct training.
        SystemKind::Hybrid | SystemKind::StaticCache | SystemKind::MultiGpu8 => {
            let mut tables = tables;
            let mut backend = backend;
            let losses = train_direct(&mut tables, &batches, &mut backend);
            Ok((tables, backend, losses))
        }
        SystemKind::StrawMan | SystemKind::ScratchPipe => {
            let mode = if kind == SystemKind::StrawMan {
                CacheMode::Sequential
            } else {
                CacheMode::Pipelined
            };
            let sys = dynamic_cache_system(cfg, mode);
            let (tables, backend, report) = sys.train_functional(tables, &batches, backend)?;
            let losses = report.records.iter().map(|r| r.loss).collect();
            Ok((tables, backend, losses))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_run_scaled_down() {
        let cfg = ExperimentConfig::scaled_down(LocalityProfile::Medium, 0.1, 8);
        for kind in [
            SystemKind::Hybrid,
            SystemKind::StaticCache,
            SystemKind::StrawMan,
            SystemKind::ScratchPipe,
            SystemKind::MultiGpu8,
        ] {
            let r = run_system(kind, &cfg).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(r.iteration_time.as_millis() > 0.0, "{kind}");
            assert_eq!(r.iterations, 8, "{kind}");
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn figure13_ordering_holds_at_paper_scale() {
        // The paper's headline ordering at medium locality, 2 % cache:
        // ScratchPipe < Straw-man < Static cache ≤ Hybrid (iteration time).
        let cfg = ExperimentConfig::paper(LocalityProfile::Medium, 0.02, 10);
        let sp = run_system(SystemKind::ScratchPipe, &cfg).unwrap();
        let straw = run_system(SystemKind::StrawMan, &cfg).unwrap();
        let stat = run_system(SystemKind::StaticCache, &cfg).unwrap();
        let hyb = run_system(SystemKind::Hybrid, &cfg).unwrap();
        assert!(
            sp.iteration_time < straw.iteration_time,
            "sp {} straw {}",
            sp.iteration_time,
            straw.iteration_time
        );
        assert!(
            straw.iteration_time < stat.iteration_time,
            "straw {} static {}",
            straw.iteration_time,
            stat.iteration_time
        );
        assert!(
            stat.iteration_time < hyb.iteration_time,
            "static {} hybrid {}",
            stat.iteration_time,
            hyb.iteration_time
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn scratchpipe_speedup_vs_static_in_paper_band() {
        // Paper: avg 2.8× (max 4.2×) vs static caching; high-locality
        // worst case still 1.6–1.9×.
        let mut speedups = Vec::new();
        for profile in LocalityProfile::SWEEP {
            let cfg = ExperimentConfig::paper(profile, 0.02, 10);
            let sp = run_system(SystemKind::ScratchPipe, &cfg).unwrap();
            let stat = run_system(SystemKind::StaticCache, &cfg).unwrap();
            speedups.push(sp.speedup_over(&stat));
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(
            (1.8..4.5).contains(&avg),
            "avg speedup {avg} (per-profile: {speedups:?})"
        );
        let high = *speedups.last().expect("4 profiles");
        assert!((1.2..2.8).contains(&high), "high-locality speedup {high}");
        // Gains shrink as locality rises.
        assert!(speedups[0] > speedups[3], "{speedups:?}");
    }

    #[test]
    fn functional_training_is_identical_across_all_systems() {
        // The paper's accuracy-neutrality claim, verified bitwise: every
        // design point produces the same tables, the same dense model and
        // the same losses.
        let cfg = ExperimentConfig::scaled_down(LocalityProfile::Medium, 0.2, 10);
        let (ref_tables, ref_backend, ref_losses) =
            train_functional(SystemKind::Hybrid, &cfg, 0.05).unwrap();
        for kind in [
            SystemKind::StaticCache,
            SystemKind::StrawMan,
            SystemKind::ScratchPipe,
            SystemKind::MultiGpu8,
        ] {
            let (tables, backend, losses) = train_functional(kind, &cfg, 0.05).unwrap();
            for (t, (a, b)) in ref_tables.iter().zip(&tables).enumerate() {
                assert!(
                    a.bit_eq(b),
                    "{kind}: table {t} diverged at row {:?}",
                    a.first_diff_row(b)
                );
            }
            assert!(backend.model().bit_eq(ref_backend.model()), "{kind}: MLPs");
            assert_eq!(losses.len(), ref_losses.len());
            for (i, (a, b)) in ref_losses.iter().zip(&losses).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind}: loss {i}");
            }
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale: run with --release")]
    fn multi_gpu_is_fastest_but_scratchpipe_close_at_high_locality() {
        let cfg = ExperimentConfig::paper(LocalityProfile::High, 0.02, 10);
        let sp = run_system(SystemKind::ScratchPipe, &cfg).unwrap();
        let mg = run_system(SystemKind::MultiGpu8, &cfg).unwrap();
        assert!(mg.iteration_time < sp.iteration_time);
        // Paper: at high locality the 8-GPU system is only ≈29 % faster.
        let gap = sp.iteration_time / mg.iteration_time;
        assert!((1.0..2.2).contains(&gap), "gap {gap}");
    }

    #[test]
    fn system_kind_display() {
        assert_eq!(SystemKind::ScratchPipe.to_string(), "ScratchPipe");
        assert_eq!(SystemKind::FIGURE13.len(), 4);
    }
}
