//! The [`VectorStore`] abstraction over row-addressable fp32 storage.
//!
//! The same gather/reduce/scatter kernels of [`crate::ops`] must run against
//! two very different homes: a CPU-resident [`EmbeddingTable`]
//! (index = row ID) and the GPU scratchpad of the `scratchpipe` crate
//! (index = cache slot). `VectorStore` is the minimal interface both
//! provide.
//!
//! [`EmbeddingTable`]: crate::EmbeddingTable

/// Row-addressable storage of fixed-width fp32 vectors.
pub trait VectorStore {
    /// Width of every row in elements.
    fn dim(&self) -> usize;

    /// Number of rows.
    fn len(&self) -> usize;

    /// True if the store holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable view of row `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    fn row(&self, idx: usize) -> &[f32];

    /// Mutable view of row `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    fn row_mut(&mut self, idx: usize) -> &mut [f32];

    /// Copies row `src` of `from` into row `dst` of `self`.
    ///
    /// Takes the source as `&dyn VectorStore` (rather than a generic
    /// parameter) so the trait stays object-safe: `&dyn VectorStore` is a
    /// valid store and callers holding concrete stores coerce for free.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or either index is out of bounds.
    fn copy_row_from(&mut self, dst: usize, from: &dyn VectorStore, src: usize) {
        assert_eq!(self.dim(), from.dim(), "row width mismatch");
        self.row_mut(dst).copy_from_slice(from.row(src));
    }
}

/// A plain heap-allocated store, used for staging buffers and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseStore {
    dim: usize,
    data: Vec<f32>,
}

impl DenseStore {
    /// Creates a zero-filled store of `rows × dim`.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        DenseStore {
            dim,
            data: vec![0.0; rows * dim],
        }
    }

    /// Creates a store from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len() % dim, 0, "data must be a whole number of rows");
        DenseStore { dim, data }
    }

    /// The flat row-major buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    pub fn as_flat_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Drops all rows but keeps the allocation, so the store can be
    /// refilled with [`DenseStore::push_row`] without reallocating —
    /// the arena-reuse pattern of the pipeline's staging buffers.
    pub fn clear_rows(&mut self) {
        self.data.clear();
    }

    /// Pre-allocates space for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.dim);
    }

    /// Appends one row to the store.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Resizes the store to exactly `rows` rows, zero-filling any new
    /// tail. Lets callers size the arena up front and then fill disjoint
    /// row ranges through [`DenseStore::as_flat_mut`] — the worker-shard
    /// write pattern.
    pub fn resize_rows(&mut self, rows: usize) {
        self.data.resize(rows * self.dim, 0.0);
    }
}

impl VectorStore for DenseStore {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn row(&self, idx: usize) -> &[f32] {
        &self.data[idx * self.dim..(idx + 1) * self.dim]
    }

    fn row_mut(&mut self, idx: usize) -> &mut [f32] {
        &mut self.data[idx * self.dim..(idx + 1) * self.dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_store_has_shape() {
        let s = DenseStore::zeros(3, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.dim(), 4);
        assert!(!s.is_empty());
        assert!(s.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_store() {
        let s = DenseStore::zeros(0, 4);
        assert!(s.is_empty());
    }

    #[test]
    fn row_mut_writes_through() {
        let mut s = DenseStore::zeros(2, 2);
        s.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        assert_eq!(s.as_flat(), &[0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn copy_row_between_stores() {
        let mut a = DenseStore::zeros(2, 3);
        let b = DenseStore::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        a.copy_row_from(0, &b, 1);
        assert_eq!(a.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn vector_store_is_object_safe() {
        let b = DenseStore::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2);
        let dynamic: &dyn VectorStore = &b;
        assert_eq!(dynamic.row(1), &[3.0, 4.0]);
        let mut a = DenseStore::zeros(1, 2);
        a.copy_row_from(0, dynamic, 0);
        assert_eq!(a.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn arena_reuse_does_not_reallocate() {
        let mut s = DenseStore::zeros(0, 4);
        s.reserve_rows(8);
        let base = s.as_flat().as_ptr();
        for _ in 0..3 {
            s.clear_rows();
            assert!(s.is_empty());
            for k in 0..8 {
                s.push_row(&[k as f32; 4]);
            }
            assert_eq!(s.len(), 8);
            assert_eq!(s.row(7), &[7.0; 4]);
        }
        // The reserved allocation was reused across all refills.
        assert_eq!(s.as_flat().as_ptr(), base);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_rejects_wrong_width() {
        let mut s = DenseStore::zeros(0, 3);
        s.push_row(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_flat_rejected() {
        let _ = DenseStore::from_flat(vec![1.0; 5], 2);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_row_panics() {
        let s = DenseStore::zeros(1, 2);
        let _ = s.row(1);
    }
}
