//! Embedding-layer training kernels (paper §II-B, Figure 2).
//!
//! Forward propagation **gathers** the rows named by a [`TableBag`] and
//! **sum-pools** them per sample; backpropagation **duplicates** each
//! sample's output gradient to every row it gathered, **coalesces**
//! duplicates targeting the same row, and **scatter-updates** the table
//! with SGD.
//!
//! Every kernel takes a `map: id → index` closure so the identical code
//! path serves both homes an embedding may live in:
//!
//! * the CPU-resident [`EmbeddingTable`](crate::EmbeddingTable), where
//!   `map` is the identity, and
//! * the GPU scratchpad of the `scratchpipe` crate, where `map` translates
//!   a sparse feature ID to its cache slot.
//!
//! # Determinism
//!
//! Floating-point addition is not associative, so the *order* of every sum
//! is pinned down: pooling adds rows in bag order, and coalescing groups by
//! row ID with a stable sort so duplicates accumulate in occurrence order.
//! Any two systems performing the same logical update therefore produce
//! bit-identical results — the foundation of the reproduction's
//! correctness tests.

use crate::sparse::TableBag;
use crate::store::VectorStore;

/// `acc += row`, elementwise. The length equality assert lets LLVM drop
/// the per-element bounds checks and autovectorize the loop; the
/// accumulation order (left to right within the slice) is unchanged.
#[inline]
fn add_assign_row(acc: &mut [f32], row: &[f32]) {
    assert_eq!(acc.len(), row.len(), "row width mismatch");
    for (a, v) in acc.iter_mut().zip(row) {
        *a += v;
    }
}

/// `y += a * x`, elementwise (the classic axpy). Bit-identical to the
/// open-coded `*y -= lr * g` form when called with `a = -lr`: IEEE-754
/// negation commutes through multiplication and `y - t == y + (-t)`.
#[inline]
fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "row width mismatch");
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

/// Gathers `store` rows at `indices` into a new `indices.len() × dim`
/// buffer.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_rows<S: VectorStore + ?Sized>(store: &S, indices: &[usize]) -> Vec<f32> {
    let dim = store.dim();
    let mut out = Vec::with_capacity(indices.len() * dim);
    for &idx in indices {
        out.extend_from_slice(store.row(idx));
    }
    out
}

/// Forward pass for one table, writing into a caller-provided flat
/// `batch_size × dim` slice (the hot-path variant: the pipeline allocates
/// one pooled arena per run and refills it every iteration). The slice is
/// zeroed first, so a sample with zero lookups pools to the zero vector.
///
/// # Panics
///
/// Panics if `out.len() != batch_size × dim` or `map` produces an
/// out-of-bounds index.
pub fn gather_reduce_into<S, F>(store: &S, bag: &TableBag, map: F, out: &mut [f32])
where
    S: VectorStore + ?Sized,
    F: FnMut(u64) -> usize,
{
    assert_eq!(
        out.len(),
        bag.batch_size() * store.dim(),
        "pooled buffer must be batch_size × dim"
    );
    gather_reduce_range(store, bag, map, 0, bag.batch_size(), out);
}

/// Forward pass for the sample range `lo..hi` of one table, writing into a
/// caller-provided flat `(hi - lo) × dim` slice. This is the shardable
/// core of [`gather_reduce_into`]: each sample's pooled sum is computed
/// whole by whoever owns its range, so splitting a batch across workers
/// produces bit-identical output to a single-worker gather.
///
/// # Panics
///
/// Panics if `lo > hi`, `hi > bag.batch_size()`, `out.len() != (hi - lo) ×
/// dim`, or `map` produces an out-of-bounds index.
pub fn gather_reduce_range<S, F>(
    store: &S,
    bag: &TableBag,
    mut map: F,
    lo: usize,
    hi: usize,
    out: &mut [f32],
) where
    S: VectorStore + ?Sized,
    F: FnMut(u64) -> usize,
{
    let dim = store.dim();
    assert!(lo <= hi && hi <= bag.batch_size(), "sample range in bounds");
    assert_eq!(
        out.len(),
        (hi - lo) * dim,
        "pooled slice must be (hi - lo) × dim"
    );
    out.fill(0.0);
    for (acc, s) in out.chunks_exact_mut(dim).zip(lo..hi) {
        for &id in bag.sample(s) {
            add_assign_row(acc, store.row(map(id)));
        }
    }
}

/// Forward pass for the sample range `lo..hi` of one table through a
/// precomputed **deduplicated index**: lookup `j` of the bag resolves to
/// store row `unique_slots[lookup_unique[j]]`, so the per-lookup cost is
/// two array reads instead of a hash probe. Accumulation order is
/// identical to [`gather_reduce_range`] with the equivalent `map`, so the
/// output is bit-identical; sharding by sample range composes the same
/// way.
///
/// `lookup_unique` maps every lookup (bag order) to an index into the
/// batch's unique-ID set; `unique_slots` maps unique indices to store
/// rows.
///
/// # Panics
///
/// Panics if `lo > hi`, `hi > bag.batch_size()`, `out.len() != (hi - lo)
/// × dim`, `lookup_unique.len() != bag.ids().len()`, or an index is out
/// of bounds.
pub fn gather_reduce_indexed<S>(
    store: &S,
    bag: &TableBag,
    lookup_unique: &[u32],
    unique_slots: &[u32],
    lo: usize,
    hi: usize,
    out: &mut [f32],
) where
    S: VectorStore + ?Sized,
{
    let dim = store.dim();
    assert!(lo <= hi && hi <= bag.batch_size(), "sample range in bounds");
    assert_eq!(
        out.len(),
        (hi - lo) * dim,
        "pooled slice must be (hi - lo) × dim"
    );
    assert_eq!(
        lookup_unique.len(),
        bag.ids().len(),
        "lookup index must cover every bag lookup"
    );
    let offsets = bag.offsets();
    out.fill(0.0);
    for (acc, s) in out.chunks_exact_mut(dim).zip(lo..hi) {
        for &u in &lookup_unique[offsets[s] as usize..offsets[s + 1] as usize] {
            add_assign_row(acc, store.row(unique_slots[u as usize] as usize));
        }
    }
}

/// Forward pass for one table: gather + sum-pool, with `map` translating
/// sparse IDs to store indices. Returns a `batch_size × dim` buffer; a
/// sample with zero lookups pools to the zero vector.
///
/// # Panics
///
/// Panics if `map` produces an out-of-bounds index.
pub fn gather_reduce_mapped<S, F>(store: &S, bag: &TableBag, map: F) -> Vec<f32>
where
    S: VectorStore + ?Sized,
    F: FnMut(u64) -> usize,
{
    let mut out = vec![0.0f32; bag.batch_size() * store.dim()];
    gather_reduce_into(store, bag, map, &mut out);
    out
}

/// Forward pass with the identity ID→index mapping (CPU-resident tables).
pub fn gather_reduce<S: VectorStore + ?Sized>(store: &S, bag: &TableBag) -> Vec<f32> {
    gather_reduce_mapped(store, bag, |id| id as usize)
}

/// Backward step 1 — gradient duplication (Figure 2(b) left): expands the
/// per-sample pooled gradients (`batch_size × dim`) into per-lookup
/// gradients (`total_lookups × dim`), one copy per gathered row.
///
/// # Panics
///
/// Panics if `output_grads.len() != batch_size × dim`.
pub fn duplicate_gradients(bag: &TableBag, output_grads: &[f32], dim: usize) -> Vec<f32> {
    assert_eq!(
        output_grads.len(),
        bag.batch_size() * dim,
        "gradient buffer must be batch_size × dim"
    );
    let mut out = Vec::with_capacity(bag.total_lookups() * dim);
    for (s, sample) in bag.samples().enumerate() {
        let g = &output_grads[s * dim..(s + 1) * dim];
        for _ in 0..sample.len() {
            out.extend_from_slice(g);
        }
    }
    out
}

/// Backward step 2 — gradient coalescing (Figure 2(b) right): sums the
/// duplicated per-lookup gradients that target the same row. Returns
/// `(sorted unique IDs, coalesced gradients)` with one `dim`-wide gradient
/// per unique ID.
///
/// Duplicates are accumulated in occurrence order (stable sort), so the
/// result is bit-deterministic.
///
/// # Panics
///
/// Panics if `grads.len() != ids.len() × dim`.
pub fn coalesce(ids: &[u64], grads: &[f32], dim: usize) -> (Vec<u64>, Vec<f32>) {
    assert_eq!(grads.len(), ids.len() * dim, "per-lookup gradient shape");
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by_key(|&i| ids[i]); // stable: ties keep occurrence order
    let mut unique = Vec::new();
    let mut out: Vec<f32> = Vec::new();
    for &i in &order {
        let id = ids[i];
        if unique.last() != Some(&id) {
            unique.push(id);
            out.extend_from_slice(&grads[i * dim..(i + 1) * dim]);
        } else {
            let base = (unique.len() - 1) * dim;
            add_assign_row(&mut out[base..base + dim], &grads[i * dim..(i + 1) * dim]);
        }
    }
    (unique, out)
}

/// Backward step 3 — SGD scatter update: `row[id] -= lr × grad` for each
/// unique ID, with `map` translating IDs to store indices.
///
/// # Panics
///
/// Panics if `grads.len() != ids.len() × dim` or `map` produces an
/// out-of-bounds index.
pub fn scatter_sgd_mapped<S, F>(store: &mut S, ids: &[u64], grads: &[f32], lr: f32, mut map: F)
where
    S: VectorStore + ?Sized,
    F: FnMut(u64) -> usize,
{
    let dim = store.dim();
    assert_eq!(grads.len(), ids.len() * dim, "coalesced gradient shape");
    for (g, &id) in grads.chunks_exact(dim).zip(ids) {
        axpy(store.row_mut(map(id)), -lr, g);
    }
}

/// SGD scatter update with the identity ID→index mapping.
pub fn scatter_sgd<S: VectorStore + ?Sized>(store: &mut S, ids: &[u64], grads: &[f32], lr: f32) {
    scatter_sgd_mapped(store, ids, grads, lr, |id| id as usize);
}

/// Backward steps 1+2 fused through a precomputed deduplicated index:
/// accumulates each sample's pooled gradient directly into the bucket of
/// every row it gathered, skipping the `total_lookups × dim` duplicate
/// buffer and the per-call stable sort entirely. Returns
/// `(summed gradients, touched flags)`, one `dim`-wide bucket per unique
/// index (bucket order = unique order, i.e. ascending ID when the index
/// came from a sorted unique set).
///
/// Bit-identical to `coalesce(bag.ids(), duplicate_gradients(bag, …), …)`:
/// lookups are visited in bag order, so each bucket accumulates its
/// duplicates in occurrence order, and the first touch *copies* (not
/// adds-to-zero), preserving `-0.0` gradient bits exactly as the
/// reference's `extend_from_slice` does.
///
/// # Panics
///
/// Panics if `output_grads.len() != batch_size × dim`,
/// `lookup_unique.len() != bag.ids().len()`, or an index is `>=
/// num_unique`.
pub fn coalesce_indexed(
    bag: &TableBag,
    output_grads: &[f32],
    dim: usize,
    lookup_unique: &[u32],
    num_unique: usize,
) -> (Vec<f32>, Vec<bool>) {
    assert_eq!(
        output_grads.len(),
        bag.batch_size() * dim,
        "gradient buffer must be batch_size × dim"
    );
    assert_eq!(
        lookup_unique.len(),
        bag.ids().len(),
        "lookup index must cover every bag lookup"
    );
    let mut summed = vec![0.0f32; num_unique * dim];
    let mut touched = vec![false; num_unique];
    let offsets = bag.offsets();
    for s in 0..bag.batch_size() {
        let g = &output_grads[s * dim..(s + 1) * dim];
        for &u in &lookup_unique[offsets[s] as usize..offsets[s + 1] as usize] {
            let u = u as usize;
            let bucket = &mut summed[u * dim..(u + 1) * dim];
            if touched[u] {
                add_assign_row(bucket, g);
            } else {
                bucket.copy_from_slice(g);
                touched[u] = true;
            }
        }
    }
    (summed, touched)
}

/// Full embedding backward pass through a precomputed deduplicated index
/// (coalesce-into-buckets → SGD scatter): the indexed counterpart of
/// [`embedding_backward_mapped`], bit-identical to it when
/// `unique_slots[lookup_unique[j]] == map(bag.ids()[j])` for every
/// lookup and the unique set is sorted (the scatter applies buckets in
/// ascending unique order, matching the reference's sorted scatter).
/// Unique indices no lookup references are left untouched, exactly as
/// the reference never emits them. Returns the number of unique rows
/// updated.
pub fn embedding_backward_indexed<S>(
    store: &mut S,
    bag: &TableBag,
    output_grads: &[f32],
    lr: f32,
    lookup_unique: &[u32],
    unique_slots: &[u32],
) -> usize
where
    S: VectorStore + ?Sized,
{
    let dim = store.dim();
    let (summed, touched) =
        coalesce_indexed(bag, output_grads, dim, lookup_unique, unique_slots.len());
    let mut updated = 0;
    for (u, g) in summed.chunks_exact(dim).enumerate() {
        if touched[u] {
            axpy(store.row_mut(unique_slots[u] as usize), -lr, g);
            updated += 1;
        }
    }
    updated
}

/// Full embedding backward pass (duplicate → coalesce → scatter) for one
/// table, with an ID→index mapping. Returns the number of unique rows
/// updated (useful for traffic accounting).
pub fn embedding_backward_mapped<S, F>(
    store: &mut S,
    bag: &TableBag,
    output_grads: &[f32],
    lr: f32,
    map: F,
) -> usize
where
    S: VectorStore + ?Sized,
    F: FnMut(u64) -> usize,
{
    let dim = store.dim();
    let dup = duplicate_gradients(bag, output_grads, dim);
    let (unique, summed) = coalesce(bag.ids(), &dup, dim);
    scatter_sgd_mapped(store, &unique, &summed, lr, map);
    unique.len()
}

/// Full embedding backward pass with the identity mapping.
pub fn embedding_backward<S: VectorStore + ?Sized>(
    store: &mut S,
    bag: &TableBag,
    output_grads: &[f32],
    lr: f32,
) -> usize {
    embedding_backward_mapped(store, bag, output_grads, lr, |id| id as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DenseStore;
    use crate::table::EmbeddingTable;

    /// Table whose row r is [r, r, ...] — sums are easy to verify.
    fn ramp_table(rows: usize, dim: usize) -> EmbeddingTable {
        EmbeddingTable::from_fn(rows, dim, |r, _| r as f32)
    }

    fn figure2_bag() -> TableBag {
        TableBag::from_samples(&[vec![0, 4], vec![0, 2, 5]])
    }

    #[test]
    fn gather_reduce_matches_figure2_forward() {
        // Paper Figure 2(a): outputs are E[0]+E[4] and E[0]+E[2]+E[5].
        let t = ramp_table(6, 2);
        let out = gather_reduce(&t, &figure2_bag());
        assert_eq!(out, vec![4.0, 4.0, 7.0, 7.0]);
    }

    #[test]
    fn empty_sample_pools_to_zero() {
        let t = ramp_table(4, 3);
        let bag = TableBag::from_samples(&[vec![], vec![2]]);
        let out = gather_reduce(&t, &bag);
        assert_eq!(out, vec![0.0, 0.0, 0.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn gather_reduce_into_reuses_buffer_bitwise() {
        let t = EmbeddingTable::seeded(16, 4, 3);
        let bag = TableBag::from_samples(&[vec![1, 5, 5], vec![], vec![9]]);
        let fresh = gather_reduce(&t, &bag);
        // A dirty, reused buffer must produce the same bits.
        let mut reused = vec![f32::NAN; fresh.len()];
        gather_reduce_into(&t, &bag, |id| id as usize, &mut reused);
        assert_eq!(
            fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reused.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gather_reduce_range_stitches_to_full_gather() {
        // Any partition of the batch into ranges must reproduce the
        // single-call gather bit-for-bit — the worker-sharding contract.
        let t = EmbeddingTable::seeded(32, 4, 11);
        let bag = TableBag::from_samples(&[
            vec![1, 5, 5],
            vec![],
            vec![9, 2],
            vec![31],
            vec![7, 7, 7, 0],
        ]);
        let full = gather_reduce(&t, &bag);
        let dim = 4;
        for cuts in [vec![0, 5], vec![0, 2, 5], vec![0, 1, 3, 4, 5]] {
            let mut stitched = vec![f32::NAN; full.len()];
            for w in cuts.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                gather_reduce_range(
                    &t,
                    &bag,
                    |id| id as usize,
                    lo,
                    hi,
                    &mut stitched[lo * dim..hi * dim],
                );
            }
            assert_eq!(
                full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                stitched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "cuts {cuts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch_size × dim")]
    fn gather_reduce_into_rejects_bad_shape() {
        let t = ramp_table(4, 2);
        let bag = TableBag::from_samples(&[vec![0]]);
        let mut out = vec![0.0; 3];
        gather_reduce_into(&t, &bag, |id| id as usize, &mut out);
    }

    #[test]
    fn gather_rows_copies_rows() {
        let t = ramp_table(5, 2);
        let g = gather_rows(&t, &[3, 1, 3]);
        assert_eq!(g, vec![3.0, 3.0, 1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn duplicate_expands_per_lookup() {
        // G[0] for 2 lookups, G[1] for 3 (paper Figure 2(b)).
        let bag = figure2_bag();
        let grads = vec![1.0, 1.0, 2.0, 2.0]; // G[0]=(1,1), G[1]=(2,2)
        let dup = duplicate_gradients(&bag, &grads, 2);
        assert_eq!(dup, vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn coalesce_matches_figure2_backward() {
        // Row 0 is hit by G[0] and G[1]; rows 2, 4, 5 by one gradient each.
        let bag = figure2_bag();
        let grads = vec![1.0, 1.0, 2.0, 2.0];
        let dup = duplicate_gradients(&bag, &grads, 2);
        let (ids, summed) = coalesce(bag.ids(), &dup, 2);
        assert_eq!(ids, vec![0, 2, 4, 5]);
        // Row 0: G[0]+G[1] = (3,3); row 2: (2,2); row 4: (1,1); row 5: (2,2).
        assert_eq!(summed, vec![3.0, 3.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn scatter_sgd_applies_updates() {
        let mut t = ramp_table(6, 2);
        scatter_sgd(&mut t, &[0, 5], &[1.0, 1.0, 2.0, 2.0], 0.5);
        assert_eq!(t.row(0), &[-0.5, -0.5]);
        assert_eq!(t.row(5), &[4.0, 4.0]);
        assert_eq!(t.row(1), &[1.0, 1.0]); // untouched
    }

    #[test]
    fn full_backward_equals_manual_composition() {
        let bag = figure2_bag();
        let grads = vec![1.0, 1.0, 2.0, 2.0];
        let mut auto = ramp_table(6, 2);
        let updated = embedding_backward(&mut auto, &bag, &grads, 0.1);
        assert_eq!(updated, 4);

        let mut manual = ramp_table(6, 2);
        let dup = duplicate_gradients(&bag, &grads, 2);
        let (ids, summed) = coalesce(bag.ids(), &dup, 2);
        scatter_sgd(&mut manual, &ids, &summed, 0.1);
        assert!(auto.bit_eq(&manual));
    }

    #[test]
    fn mapped_kernels_follow_indirection() {
        // Store rows in arbitrary slots; map id -> slot.
        let slots = DenseStore::from_flat(vec![9.0, 9.0, 5.0, 5.0, 7.0, 7.0], 2);
        let map = |id: u64| match id {
            10 => 2usize, // row (7,7)
            20 => 1,      // row (5,5)
            _ => 0,
        };
        let bag = TableBag::from_samples(&[vec![10, 20]]);
        let out = gather_reduce_mapped(&slots, &bag, map);
        assert_eq!(out, vec![12.0, 12.0]);

        let mut slots = slots;
        embedding_backward_mapped(&mut slots, &bag, &[1.0, 1.0], 1.0, map);
        assert_eq!(slots.row(2), &[6.0, 6.0]);
        assert_eq!(slots.row(1), &[4.0, 4.0]);
        assert_eq!(slots.row(0), &[9.0, 9.0]);
    }

    #[test]
    fn coalesce_is_deterministic_under_permutation_of_distinct_ids() {
        // Distinct ids in different order coalesce to the same sorted result.
        let dim = 1;
        let (ids_a, g_a) = coalesce(&[3, 1, 2], &[30.0, 10.0, 20.0], dim);
        let (ids_b, g_b) = coalesce(&[1, 2, 3], &[10.0, 20.0, 30.0], dim);
        assert_eq!(ids_a, ids_b);
        assert_eq!(g_a, g_b);
    }

    #[test]
    fn coalesce_duplicates_accumulate_in_occurrence_order() {
        // Occurrence order controls fp summation order; same input order
        // must give bitwise-same output.
        let dim = 1;
        let vals = [1e-7f32, 1.0, -1.0, 3e-8];
        let ids = [5u64, 5, 5, 5];
        let (u1, g1) = coalesce(&ids, &vals, dim);
        let (u2, g2) = coalesce(&ids, &vals, dim);
        assert_eq!(u1, vec![5]);
        assert_eq!(g1[0].to_bits(), g2[0].to_bits());
        assert_eq!(u1, u2);
    }

    #[test]
    #[should_panic(expected = "batch_size × dim")]
    fn duplicate_rejects_bad_shape() {
        let _ = duplicate_gradients(&figure2_bag(), &[1.0; 3], 2);
    }

    #[test]
    #[should_panic(expected = "coalesced gradient shape")]
    fn scatter_rejects_bad_shape() {
        let mut t = ramp_table(2, 2);
        scatter_sgd(&mut t, &[0], &[1.0; 3], 0.1);
    }

    /// Builds the deduplicated index pair for a bag against an `id → slot`
    /// mapping: sorted unique ids → slots, plus per-lookup indices.
    fn dedup_index(bag: &TableBag, map: impl Fn(u64) -> usize) -> (Vec<u32>, Vec<u32>) {
        let unique = bag.unique_ids();
        let unique_slots: Vec<u32> = unique.iter().map(|&id| map(id) as u32).collect();
        let lookup_unique: Vec<u32> = bag
            .ids()
            .iter()
            .map(|id| unique.binary_search(id).unwrap() as u32)
            .collect();
        (lookup_unique, unique_slots)
    }

    #[test]
    fn indexed_gather_matches_mapped_bitwise() {
        let t = EmbeddingTable::seeded(32, 4, 11);
        let bag = TableBag::from_samples(&[vec![1, 5, 5], vec![], vec![9, 2], vec![7, 7, 7, 0]]);
        let (lookup_unique, unique_slots) = dedup_index(&bag, |id| id as usize);
        let reference = gather_reduce(&t, &bag);
        let mut indexed = vec![f32::NAN; reference.len()];
        gather_reduce_indexed(
            &t,
            &bag,
            &lookup_unique,
            &unique_slots,
            0,
            bag.batch_size(),
            &mut indexed,
        );
        assert_eq!(
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            indexed.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn indexed_backward_matches_mapped_bitwise() {
        let bag = TableBag::from_samples(&[vec![0, 4, 4], vec![0, 2, 5], vec![5]]);
        let grads = vec![1.0, -0.0, 2.0, 2.5, -1.0, 0.25];
        let mut reference = ramp_table(6, 2);
        let n_ref = embedding_backward_mapped(&mut reference, &bag, &grads, 0.1, |id| id as usize);
        let (lookup_unique, unique_slots) = dedup_index(&bag, |id| id as usize);
        let mut indexed = ramp_table(6, 2);
        let n_idx = embedding_backward_indexed(
            &mut indexed,
            &bag,
            &grads,
            0.1,
            &lookup_unique,
            &unique_slots,
        );
        assert_eq!(n_ref, n_idx);
        assert!(reference.bit_eq(&indexed));
    }

    #[test]
    fn coalesce_indexed_preserves_negative_zero_first_touch() {
        // A single -0.0 gradient must survive as -0.0 (the reference's
        // first-occurrence copy), not become +0.0 via 0.0 + (-0.0).
        let bag = TableBag::from_samples(&[vec![3]]);
        let (lookup_unique, _slots) = dedup_index(&bag, |id| id as usize);
        let (summed, touched) = coalesce_indexed(&bag, &[-0.0f32], 1, &lookup_unique, 1);
        assert!(touched[0]);
        assert_eq!(summed[0].to_bits(), (-0.0f32).to_bits());
    }

    proptest::proptest! {
        /// Gather-reduce distributes over sample concatenation: pooling a
        /// sample equals the sum of its rows, for arbitrary id multisets.
        #[test]
        fn pooled_equals_row_sum(ids in proptest::collection::vec(0u64..32, 0..20)) {
            let t = EmbeddingTable::seeded(32, 4, 99);
            let bag = TableBag::from_samples(std::slice::from_ref(&ids));
            let pooled = gather_reduce(&t, &bag);
            let mut expect = vec![0.0f32; 4];
            for &id in &ids {
                for (a, v) in expect.iter_mut().zip(t.row(id as usize)) {
                    *a += v;
                }
            }
            proptest::prop_assert_eq!(pooled, expect);
        }

        /// Coalescing preserves the total gradient mass per row: the sum of
        /// coalesced gradients equals the sum of duplicated gradients.
        #[test]
        fn coalesce_conserves_mass(ids in proptest::collection::vec(0u64..16, 1..40)) {
            let dim = 2;
            let grads: Vec<f32> = (0..ids.len() * dim).map(|i| (i % 7) as f32 - 3.0).collect();
            let (unique, summed) = coalesce(&ids, &grads, dim);
            // unique ids are sorted and deduped
            proptest::prop_assert!(unique.windows(2).all(|w| w[0] < w[1]));
            let total_in: f64 = grads.iter().map(|&v| v as f64).sum();
            let total_out: f64 = summed.iter().map(|&v| v as f64).sum();
            proptest::prop_assert!((total_in - total_out).abs() < 1e-3);
        }

        /// One SGD step through the full backward path changes exactly the
        /// unique touched rows and no others.
        #[test]
        fn backward_touches_only_referenced_rows(
            ids in proptest::collection::vec(0u64..24, 1..12)
        ) {
            let bag = TableBag::from_samples(std::slice::from_ref(&ids));
            let before = EmbeddingTable::seeded(24, 3, 5);
            let mut after = before.clone();
            let grads = vec![1.0f32; 3];
            embedding_backward(&mut after, &bag, &grads, 0.25);
            let touched = bag.unique_ids();
            for r in 0..24u64 {
                let same = before.row(r as usize) == after.row(r as usize);
                if touched.contains(&r) {
                    proptest::prop_assert!(!same, "row {} should change", r);
                } else {
                    proptest::prop_assert!(same, "row {} must not change", r);
                }
            }
        }
    }
}
