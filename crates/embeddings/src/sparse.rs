//! Sparse feature batches in CSR layout.
//!
//! A mini-batch carries, for every embedding table, a *bag* of sparse row
//! IDs per sample: sample `s` of table `t` gathers `L` rows which are later
//! sum-pooled into one vector (paper Figure 2(a)). The CSR layout
//! (`ids` + `offsets`) mirrors PyTorch's `EmbeddingBag` and allows a
//! variable number of lookups per sample.

use serde::{Deserialize, Serialize};

/// The sparse row IDs one mini-batch contributes to a single table.
///
/// `offsets` has `batch_size + 1` entries; sample `s` owns
/// `ids[offsets[s] .. offsets[s + 1]]`. IDs may repeat both within a sample
/// and across samples — duplicate handling is exactly the gradient
/// duplicate/coalesce problem of the paper's Figure 2(b).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableBag {
    ids: Vec<u64>,
    offsets: Vec<u32>,
}

impl TableBag {
    /// Builds a bag from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty, not monotonically non-decreasing, or
    /// does not end at `ids.len()`.
    pub fn new(ids: Vec<u64>, offsets: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            ids.len(),
            "offsets must end at ids.len()"
        );
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        TableBag { ids, offsets }
    }

    /// Builds a bag from per-sample ID lists.
    pub fn from_samples(samples: &[Vec<u64>]) -> Self {
        let mut ids = Vec::with_capacity(samples.iter().map(Vec::len).sum());
        let mut offsets = Vec::with_capacity(samples.len() + 1);
        offsets.push(0u32);
        for s in samples {
            ids.extend_from_slice(s);
            offsets.push(ids.len() as u32);
        }
        TableBag { ids, offsets }
    }

    /// Number of samples in the batch.
    pub fn batch_size(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of lookups (gathered rows) across all samples.
    pub fn total_lookups(&self) -> usize {
        self.ids.len()
    }

    /// The flat ID array.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The CSR offsets array (length `batch_size + 1`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The IDs gathered by sample `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= batch_size()`.
    pub fn sample(&self, s: usize) -> &[u64] {
        let lo = self.offsets[s] as usize;
        let hi = self.offsets[s + 1] as usize;
        &self.ids[lo..hi]
    }

    /// Iterates over per-sample ID slices.
    pub fn samples(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.batch_size()).map(move |s| self.sample(s))
    }

    /// The sorted, deduplicated set of IDs this bag touches.
    pub fn unique_ids(&self) -> Vec<u64> {
        let mut v = self.ids.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// `total_lookups / unique_ids` — the gradient-duplication factor that
    /// drives coalescing cost and GPU scatter contention.
    pub fn duplication_ratio(&self) -> f64 {
        if self.ids.is_empty() {
            return 1.0;
        }
        self.ids.len() as f64 / self.unique_ids().len() as f64
    }

    /// Largest row ID referenced, or `None` for an empty bag.
    pub fn max_id(&self) -> Option<u64> {
        self.ids.iter().copied().max()
    }
}

/// One mini-batch of sparse inputs: a [`TableBag`] per embedding table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseBatch {
    bags: Vec<TableBag>,
    batch_size: usize,
}

impl SparseBatch {
    /// Builds a batch from per-table bags.
    ///
    /// # Panics
    ///
    /// Panics if `bags` is empty or the bags disagree on batch size.
    pub fn new(bags: Vec<TableBag>) -> Self {
        assert!(!bags.is_empty(), "batch must cover at least one table");
        let batch_size = bags[0].batch_size();
        assert!(
            bags.iter().all(|b| b.batch_size() == batch_size),
            "all tables must share one batch size"
        );
        SparseBatch { bags, batch_size }
    }

    /// Builds a batch from `rows[sample][table] = ids` nested lists —
    /// convenient for tests and doc examples.
    ///
    /// # Panics
    ///
    /// Panics if any sample does not provide IDs for every table.
    pub fn from_rows(num_tables: usize, rows: &[Vec<Vec<u64>>]) -> Self {
        let mut per_table: Vec<Vec<Vec<u64>>> = vec![Vec::with_capacity(rows.len()); num_tables];
        for sample in rows {
            assert_eq!(sample.len(), num_tables, "sample must cover every table");
            for (t, ids) in sample.iter().enumerate() {
                per_table[t].push(ids.clone());
            }
        }
        SparseBatch::new(
            per_table
                .iter()
                .map(|s| TableBag::from_samples(s))
                .collect(),
        )
    }

    /// Number of embedding tables this batch feeds.
    pub fn num_tables(&self) -> usize {
        self.bags.len()
    }

    /// Number of samples in the batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The bag for table `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= num_tables()`.
    pub fn bag(&self, t: usize) -> &TableBag {
        &self.bags[t]
    }

    /// Iterates over `(table_index, bag)` pairs.
    pub fn bags(&self) -> impl Iterator<Item = (usize, &TableBag)> + '_ {
        self.bags.iter().enumerate()
    }

    /// Total lookups across every table.
    pub fn total_lookups(&self) -> usize {
        self.bags.iter().map(TableBag::total_lookups).sum()
    }

    /// Sorted unique IDs per table.
    pub fn unique_ids_per_table(&self) -> Vec<Vec<u64>> {
        self.bags.iter().map(TableBag::unique_ids).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag() -> TableBag {
        TableBag::from_samples(&[vec![0, 4], vec![0, 2, 5]])
    }

    #[test]
    fn csr_shape_matches_figure2_example() {
        // Paper Figure 2: batch of 2, gathering {0,4} and {0,2,5}.
        let b = bag();
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.total_lookups(), 5);
        assert_eq!(b.sample(0), &[0, 4]);
        assert_eq!(b.sample(1), &[0, 2, 5]);
        assert_eq!(b.offsets(), &[0, 2, 5]);
    }

    #[test]
    fn unique_ids_are_sorted_and_deduped() {
        let b = bag();
        assert_eq!(b.unique_ids(), vec![0, 2, 4, 5]);
        // Row 0 is looked up twice: duplication ratio 5/4.
        assert!((b.duplication_ratio() - 1.25).abs() < 1e-12);
        assert_eq!(b.max_id(), Some(5));
    }

    #[test]
    fn empty_bag_is_well_behaved() {
        let b = TableBag::from_samples(&[vec![], vec![]]);
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.total_lookups(), 0);
        assert_eq!(b.duplication_ratio(), 1.0);
        assert_eq!(b.max_id(), None);
        assert!(b.unique_ids().is_empty());
    }

    #[test]
    fn samples_iterator_covers_batch() {
        let b = bag();
        let collected: Vec<&[u64]> = b.samples().collect();
        assert_eq!(collected, vec![&[0u64, 4][..], &[0u64, 2, 5][..]]);
    }

    #[test]
    #[should_panic(expected = "offsets must end at ids.len()")]
    fn bad_offsets_rejected() {
        let _ = TableBag::new(vec![1, 2, 3], vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_offsets_rejected() {
        let _ = TableBag::new(vec![1, 2, 3], vec![0, 2, 1, 3]);
    }

    #[test]
    fn batch_from_rows_transposes_correctly() {
        let batch = SparseBatch::from_rows(
            2,
            &[vec![vec![1, 2], vec![10]], vec![vec![3], vec![11, 12]]],
        );
        assert_eq!(batch.num_tables(), 2);
        assert_eq!(batch.batch_size(), 2);
        assert_eq!(batch.bag(0).sample(0), &[1, 2]);
        assert_eq!(batch.bag(0).sample(1), &[3]);
        assert_eq!(batch.bag(1).sample(0), &[10]);
        assert_eq!(batch.bag(1).sample(1), &[11, 12]);
        assert_eq!(batch.total_lookups(), 6);
    }

    #[test]
    #[should_panic(expected = "share one batch size")]
    fn mismatched_batch_sizes_rejected() {
        let _ = SparseBatch::new(vec![
            TableBag::from_samples(&[vec![1]]),
            TableBag::from_samples(&[vec![1], vec![2]]),
        ]);
    }

    #[test]
    fn unique_per_table() {
        let batch = SparseBatch::from_rows(1, &[vec![vec![5, 5, 1]], vec![vec![2, 5]]]);
        assert_eq!(batch.unique_ids_per_table(), vec![vec![1, 2, 5]]);
    }
}
