//! Dense embedding tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::store::VectorStore;

/// A `rows × dim` fp32 embedding table (one categorical feature).
///
/// Rows are addressed by sparse feature ID. In the hybrid CPU-GPU systems of
/// the paper these tables live in capacity-optimized CPU DRAM; this type is
/// their functional stand-in.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// Creates a zero-initialized table.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        EmbeddingTable {
            rows,
            dim,
            data: vec![0.0; rows * dim],
        }
    }

    /// Creates a table initialized uniformly in `[-1/√dim, 1/√dim]` from a
    /// deterministic seed (the usual DLRM embedding init).
    pub fn seeded(rows: usize, dim: usize, seed: u64) -> Self {
        let mut t = Self::zeros(rows, dim);
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = 1.0 / (dim as f32).sqrt();
        for v in &mut t.data {
            *v = rng.gen_range(-bound..=bound);
        }
        t
    }

    /// Creates a table whose row `r`, element `e` is `f(r, e)` — handy for
    /// constructing recognizable fixtures in tests.
    pub fn from_fn(rows: usize, dim: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut t = Self::zeros(rows, dim);
        for r in 0..rows {
            for e in 0..dim {
                t.data[r * dim + e] = f(r, e);
            }
        }
        t
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes of storage the table occupies.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// The flat row-major data buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Exact bitwise equality with another table — stricter than `==` on
    /// floats because it distinguishes `-0.0`/`0.0` and NaN payloads. The
    /// ScratchPipe correctness tests use this to prove the pipelined runtime
    /// performs *identical* arithmetic to the sequential baseline.
    pub fn bit_eq(&self, other: &EmbeddingTable) -> bool {
        self.rows == other.rows
            && self.dim == other.dim
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Index of the first row that differs bitwise from `other`, if any.
    /// Useful in test diagnostics.
    pub fn first_diff_row(&self, other: &EmbeddingTable) -> Option<usize> {
        if self.rows != other.rows || self.dim != other.dim {
            return Some(0);
        }
        for r in 0..self.rows {
            let a = &self.data[r * self.dim..(r + 1) * self.dim];
            let b = &other.data[r * self.dim..(r + 1) * self.dim];
            if a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits()) {
                return Some(r);
            }
        }
        None
    }
}

impl VectorStore for EmbeddingTable {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.rows
    }

    fn row(&self, idx: usize) -> &[f32] {
        &self.data[idx * self.dim..(idx + 1) * self.dim]
    }

    fn row_mut(&mut self, idx: usize) -> &mut [f32] {
        &mut self.data[idx * self.dim..(idx + 1) * self.dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_init_is_deterministic_and_bounded() {
        let a = EmbeddingTable::seeded(50, 16, 42);
        let b = EmbeddingTable::seeded(50, 16, 42);
        assert!(a.bit_eq(&b));
        let bound = 1.0 / 4.0;
        assert!(a.as_flat().iter().all(|v| v.abs() <= bound));
        // Different seed differs.
        let c = EmbeddingTable::seeded(50, 16, 43);
        assert!(!a.bit_eq(&c));
    }

    #[test]
    fn from_fn_builds_expected_pattern() {
        let t = EmbeddingTable::from_fn(3, 2, |r, e| (r * 10 + e) as f32);
        assert_eq!(t.row(0), &[0.0, 1.0]);
        assert_eq!(t.row(2), &[20.0, 21.0]);
    }

    #[test]
    fn size_accounting() {
        let t = EmbeddingTable::zeros(10, 128);
        assert_eq!(t.size_bytes(), 10 * 128 * 4);
        assert_eq!(t.rows(), 10);
        assert_eq!(t.dim(), 128);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn first_diff_row_localizes_divergence() {
        let a = EmbeddingTable::from_fn(4, 2, |r, e| (r + e) as f32);
        let mut b = a.clone();
        assert_eq!(a.first_diff_row(&b), None);
        b.row_mut(2)[1] = 99.0;
        assert_eq!(a.first_diff_row(&b), Some(2));
        assert!(!a.bit_eq(&b));
    }

    #[test]
    fn bit_eq_distinguishes_signed_zero() {
        let a = EmbeddingTable::zeros(1, 1);
        let mut b = EmbeddingTable::zeros(1, 1);
        b.row_mut(0)[0] = -0.0;
        assert!(!a.bit_eq(&b));
        assert_eq!(a.first_diff_row(&b), Some(0));
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        let _ = EmbeddingTable::zeros(1, 0);
    }
}
