//! `embeddings` — the embedding-layer substrate of the ScratchPipe
//! reproduction.
//!
//! RecSys models spend most of their memory (and most of their training
//! time) in *embedding layers*: giant lookup tables mapping sparse
//! categorical feature IDs to dense vectors (paper §II-A). This crate
//! implements the full functional data path of §II-B:
//!
//! * [`SparseBatch`] / [`TableBag`] — the per-mini-batch sparse feature IDs,
//!   in CSR layout (the paper's "sparse IDs stored as part of the training
//!   dataset"),
//! * [`EmbeddingTable`] — a dense `rows × dim` fp32 table,
//! * [`VectorStore`] — the storage abstraction shared by CPU-resident
//!   tables and the GPU scratchpad of the `scratchpipe` crate, so the same
//!   training kernels run against either home,
//! * [`ops`] — forward **gather + pooled reduce**, backward **gradient
//!   duplicate → coalesce → scatter-update** (Figure 2 of the paper), and a
//!   plain SGD update rule.
//!
//! All kernels are deterministic: gathered sums run in bag order and
//! coalescing sorts by row ID, so two systems that perform the same logical
//! updates produce **bit-identical** tables — the property the ScratchPipe
//! correctness tests rely on.
//!
//! # Example
//!
//! ```
//! use embeddings::{EmbeddingTable, SparseBatch, ops};
//!
//! // One table, 100 rows of dim 4; batch of 2 samples with 2 lookups each.
//! let mut table = EmbeddingTable::seeded(100, 4, 7);
//! let batch = SparseBatch::from_rows(1, &[vec![vec![0, 4]], vec![vec![0, 2]]]);
//! let bag = batch.bag(0);
//! let pooled = ops::gather_reduce(&table, bag);
//! assert_eq!(pooled.len(), 2 * 4);
//! // Backpropagate a gradient of ones and apply SGD at lr 0.01.
//! let grads = vec![1.0f32; 2 * 4];
//! ops::embedding_backward(&mut table, bag, &grads, 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ops;
pub mod sparse;
pub mod store;
pub mod table;

pub use sparse::{SparseBatch, TableBag};
pub use store::VectorStore;
pub use table::EmbeddingTable;
