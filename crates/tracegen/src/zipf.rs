//! Power-law (Zipf) rank sampling.
//!
//! Embedding-table accesses follow a power law: the probability of touching
//! the rank-`r` hottest row is proportional to `1 / r^s` (paper §III-A,
//! Figure 3). [`ZipfSampler`] draws ranks from that distribution in O(1)
//! time and memory using Hörmann & Derflinger's rejection-inversion method,
//! which is exact for any table size — crucial here because the paper's
//! tables have 10 M rows, far too many for alias tables per table.

use rand::Rng;

/// Samples 0-based ranks `0..n` with `P(rank = r) ∝ 1/(r+1)^s`.
///
/// An exponent of `0` degenerates to the uniform distribution (the paper's
/// "Random" trace).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use tracegen::ZipfSampler;
///
/// let z = ZipfSampler::new(1_000_000, 1.05);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_x1: f64,
    h_n: f64,
    accept_cut: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `s` is negative or not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be ≥ 0, got {s}");
        if s == 0.0 {
            return ZipfSampler {
                n,
                s,
                h_x1: 0.0,
                h_n: 0.0,
                accept_cut: 0.0,
            };
        }
        let h_x1 = h(1.5, s) - 1.0; // 1^{-s} == 1
        let h_n = h(n as f64 + 0.5, s);
        let accept_cut = 2.0 - h_inv(h(2.5, s) - f64::powf(2.0, -s), s);
        ZipfSampler {
            n,
            s,
            h_x1,
            h_n,
            accept_cut,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws one 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.s == 0.0 {
            return rng.gen_range(0..self.n);
        }
        // Hörmann & Derflinger rejection-inversion. Expected < 1.1
        // iterations per sample for all practical exponents.
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_inv(u, self.s);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.accept_cut {
                return k as u64 - 1;
            }
            if u >= h(k + 0.5, self.s) - f64::powf(k, -self.s) {
                return k as u64 - 1;
            }
        }
    }

    /// The fraction of all accesses that fall on the hottest
    /// `⌈fraction·n⌉` ranks, computed from the exact generalized harmonic
    /// sums (with an integral tail approximation above one million terms).
    ///
    /// This is the analytic counterpart of a measured Figure 6 point.
    pub fn top_share(&self, fraction: f64) -> f64 {
        let k = ((fraction * self.n as f64).ceil() as u64).clamp(0, self.n);
        if k == 0 {
            return 0.0;
        }
        harmonic(k, self.s) / harmonic(self.n, self.s)
    }
}

/// H(x) = x^{1-s}/(1-s) for s ≠ 1, ln(x) for s = 1 — the integral of the
/// rank density, monotonically increasing for every s ≥ 0.
fn h(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        x.ln()
    } else {
        x.powf(1.0 - s) / (1.0 - s)
    }
}

/// Inverse of [`h`].
fn h_inv(v: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        v.exp()
    } else {
        ((1.0 - s) * v).powf(1.0 / (1.0 - s))
    }
}

/// Generalized harmonic number `H_{k,s} = Σ_{r=1..k} r^{-s}`, exact below
/// one million terms and integral-approximated above.
pub fn harmonic(k: u64, s: f64) -> f64 {
    const EXACT_LIMIT: u64 = 1_000_000;
    if k <= EXACT_LIMIT {
        return (1..=k).map(|r| f64::powf(r as f64, -s)).sum();
    }
    let head: f64 = (1..=EXACT_LIMIT).map(|r| f64::powf(r as f64, -s)).sum();
    // ∫_{EXACT_LIMIT+0.5}^{k+0.5} x^{-s} dx via the antiderivative h().
    head + h(k as f64 + 0.5, s) - h(EXACT_LIMIT as f64 + 0.5, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_counts(z: &ZipfSampler, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; z.n() as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn uniform_special_case_is_flat() {
        let z = ZipfSampler::new(50, 0.0);
        let counts = empirical_counts(&z, 100_000, 7);
        let expect = 100_000.0 / 50.0;
        for (r, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.15, "rank {r}: count {c} vs expected {expect}");
        }
    }

    #[test]
    fn rank_probabilities_match_power_law() {
        // Empirical P(rank) must track 1/(r+1)^s within sampling noise.
        let s = 1.1;
        let n = 1000u64;
        let z = ZipfSampler::new(n, s);
        let draws = 400_000;
        let counts = empirical_counts(&z, draws, 11);
        let hn = harmonic(n, s);
        for r in [0usize, 1, 2, 9, 99] {
            let expect = draws as f64 * f64::powf((r + 1) as f64, -s) / hn;
            let got = counts[r] as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.08, "rank {r}: got {got}, expect {expect:.1}");
        }
    }

    #[test]
    fn monotone_rank_popularity() {
        let z = ZipfSampler::new(64, 0.9);
        let counts = empirical_counts(&z, 300_000, 13);
        // Smooth with pairs to damp noise; popularity must broadly decrease.
        let first: u64 = counts[..8].iter().sum();
        let mid: u64 = counts[24..32].iter().sum();
        let last: u64 = counts[56..].iter().sum();
        assert!(first > mid && mid > last, "{first} {mid} {last}");
    }

    #[test]
    fn exponent_one_branch_works() {
        let z = ZipfSampler::new(1000, 1.0);
        let counts = empirical_counts(&z, 200_000, 17);
        // Rank 0 should receive ≈ 1/H_{1000,1} ≈ 13.4 % of accesses.
        let share = counts[0] as f64 / 200_000.0;
        assert!((share - 1.0 / harmonic(1000, 1.0)).abs() < 0.01, "{share}");
    }

    #[test]
    fn top_share_matches_paper_anchor_points() {
        // Criteo: 2 % of rows ≈ 80 % of traffic at s = 1.05 on 10 M rows.
        let high = ZipfSampler::new(10_000_000, 1.05);
        let share = high.top_share(0.02);
        assert!((share - 0.80).abs() < 0.06, "high-locality share {share}");
        // Alibaba: 2 % of rows ≈ 8.5 % of traffic at s = 0.37.
        let low = ZipfSampler::new(10_000_000, 0.37);
        let share = low.top_share(0.02);
        assert!((share - 0.085).abs() < 0.03, "low-locality share {share}");
    }

    #[test]
    fn top_share_is_monotone_in_fraction() {
        let z = ZipfSampler::new(100_000, 0.8);
        let mut last = 0.0;
        for f in [0.01, 0.05, 0.2, 0.5, 1.0] {
            let s = z.top_share(f);
            assert!(s >= last);
            last = s;
        }
        assert!((last - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_top_share_matches_analytic() {
        let z = ZipfSampler::new(10_000, 0.9);
        let counts = empirical_counts(&z, 500_000, 23);
        let top: u64 = counts[..200].iter().sum(); // top 2 %
        let got = top as f64 / 500_000.0;
        let want = z.top_share(0.02);
        assert!((got - want).abs() < 0.02, "got {got}, want {want}");
    }

    #[test]
    fn harmonic_tail_approximation_is_continuous() {
        // The integral tail must agree with brute force just past the limit.
        let s = 0.7;
        let exact: f64 = (1..=1_000_100u64).map(|r| f64::powf(r as f64, -s)).sum();
        let approx = harmonic(1_000_100, s);
        assert!((exact - approx).abs() / exact < 1e-6);
    }

    #[test]
    #[should_panic(expected = "need at least one rank")]
    fn zero_ranks_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be ≥ 0")]
    fn negative_exponent_rejected() {
        let _ = ZipfSampler::new(10, -0.5);
    }

    #[test]
    fn determinism_across_identical_rngs() {
        let z = ZipfSampler::new(5000, 1.3);
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
