//! `tracegen` — synthetic RecSys trace generation.
//!
//! Real production click traces are not public, so the ScratchPipe paper
//! (§V "Benchmarks") *generates* embedding-table access traces from
//! probability density functions fitted to four public datasets (Alibaba
//! User Behavior, Kaggle Anime, MovieLens, Criteo). This crate reproduces
//! that methodology:
//!
//! * [`zipf`] — a Hörmann rejection-inversion sampler for power-law
//!   (Zipf-like) rank distributions, O(1) memory at any table size,
//! * [`scramble`] — a seeded bijective permutation so that "hot" rows are
//!   spread across the ID space instead of clustered at low IDs,
//! * [`profiles`] — the paper's four locality regimes
//!   (Random / Low / Medium / High) with exponents calibrated to the quoted
//!   anchor points (Criteo: top 2 % of rows ≈ 80 % of accesses; Alibaba:
//!   top 2 % ≈ 8.5 %), plus per-dataset models for Figures 3 and 6,
//! * [`generator`] — deterministic, seeded mini-batch trace generation
//!   producing [`embeddings::SparseBatch`] values,
//! * [`stats`] — access histograms, sorted-count curves (Figure 3) and
//!   static-cache hit-rate curves (Figure 6).
//!
//! # Example
//!
//! ```
//! use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};
//!
//! let cfg = TraceConfig {
//!     num_tables: 2,
//!     rows_per_table: 1000,
//!     lookups_per_sample: 4,
//!     batch_size: 8,
//!     profile: LocalityProfile::High,
//!     seed: 42,
//! };
//! let mut gen = TraceGenerator::new(cfg);
//! let batch = gen.next_batch();
//! assert_eq!(batch.num_tables(), 2);
//! assert_eq!(batch.batch_size(), 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod profiles;
pub mod scramble;
pub mod stats;
pub mod zipf;

pub use generator::{HotOracle, TraceConfig, TraceGenerator};
pub use profiles::{DatasetModel, LocalityProfile, TableProfile};
pub use scramble::Scrambler;
pub use stats::AccessHistogram;
pub use zipf::ZipfSampler;
