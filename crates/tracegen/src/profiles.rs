//! Locality regimes and dataset models.
//!
//! §III-A of the paper observes that the *magnitude* of embedding-access
//! locality varies widely across deployment domains: in Criteo, 2 % of
//! rows absorb >80 % of accesses, while in the Alibaba User table the same
//! 2 % absorb only 8.5 %. The paper distills this spectrum into four
//! benchmark traces — Random, Low, Medium, High — plus per-dataset PDF
//! models for its characterization figures. This module holds both.

use serde::{Deserialize, Serialize};

/// One of the paper's four benchmark locality regimes.
///
/// The Zipf exponents are calibrated so that a 10 M-row table hits the
/// paper's quoted anchor points for the share of traffic captured by the
/// hottest 2 % of rows:
///
/// | regime | exponent | top-2 % share |
/// |--------|----------|---------------|
/// | Random | 0.00     | 2 % (uniform) |
/// | Low    | 0.37     | ≈ 8.5 % (Alibaba User) |
/// | Medium | 0.80     | ≈ 45 %  |
/// | High   | 1.05     | ≈ 80 % (Criteo) |
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LocalityProfile {
    /// Uniformly random accesses — the adversarial lower bound.
    Random,
    /// Long-tail dominated (Alibaba-User-like).
    Low,
    /// Intermediate skew.
    Medium,
    /// Head dominated (Criteo-like).
    High,
    /// An explicit Zipf exponent for sensitivity studies.
    Custom(
        /// The Zipf exponent `s ≥ 0`.
        f64,
    ),
}

impl LocalityProfile {
    /// The four named regimes, in the order the paper's figures use.
    pub const SWEEP: [LocalityProfile; 4] = [
        LocalityProfile::Random,
        LocalityProfile::Low,
        LocalityProfile::Medium,
        LocalityProfile::High,
    ];

    /// The Zipf exponent of this regime.
    pub fn zipf_exponent(self) -> f64 {
        match self {
            LocalityProfile::Random => 0.0,
            LocalityProfile::Low => 0.37,
            LocalityProfile::Medium => 0.80,
            LocalityProfile::High => 1.05,
            LocalityProfile::Custom(s) => s,
        }
    }

    /// Display name used in reports and figure output.
    pub fn name(self) -> &'static str {
        match self {
            LocalityProfile::Random => "Random",
            LocalityProfile::Low => "Low",
            LocalityProfile::Medium => "Medium",
            LocalityProfile::High => "High",
            LocalityProfile::Custom(_) => "Custom",
        }
    }
}

impl std::fmt::Display for LocalityProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalityProfile::Custom(s) => write!(f, "Custom(s={s})"),
            other => f.write_str(other.name()),
        }
    }
}

/// The access-popularity model of one table of a real dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableProfile {
    /// Human-readable table name (e.g. `"User"`).
    pub name: String,
    /// Number of rows (unique categorical values).
    pub rows: u64,
    /// Fitted Zipf exponent of the access counts.
    pub zipf_exponent: f64,
}

impl TableProfile {
    /// Creates a table profile.
    pub fn new(name: impl Into<String>, rows: u64, zipf_exponent: f64) -> Self {
        TableProfile {
            name: name.into(),
            rows,
            zipf_exponent,
        }
    }
}

/// A synthetic stand-in for one of the paper's four real datasets
/// (Figure 3 / Figure 6). Exponents and row counts are calibrated to
/// reproduce the qualitative shapes the paper reports; they are **not**
/// fits to the raw data (which this reproduction does not ship).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetModel {
    /// Dataset display name.
    pub name: String,
    /// Per-table popularity models.
    pub tables: Vec<TableProfile>,
}

impl DatasetModel {
    /// Alibaba User Behavior: very long tail on the User table (the
    /// paper's flattest curve; top 2 % of rows ≈ 8.5 % of traffic) and a
    /// moderately skewed Item table.
    pub fn alibaba() -> Self {
        DatasetModel {
            name: "Alibaba".to_owned(),
            tables: vec![
                TableProfile::new("User", 987_994, 0.37),
                TableProfile::new("Item", 4_162_024, 0.62),
            ],
        }
    }

    /// Kaggle Anime recommendations: strongly head-heavy item catalogue
    /// (popular shows dominate), users moderately skewed.
    pub fn kaggle_anime() -> Self {
        DatasetModel {
            name: "Kaggle Anime".to_owned(),
            tables: vec![
                TableProfile::new("User", 73_516, 0.65),
                TableProfile::new("Item", 11_200, 1.00),
            ],
        }
    }

    /// MovieLens-25M: classic medium-high skew on movies.
    pub fn movielens() -> Self {
        DatasetModel {
            name: "MovieLens".to_owned(),
            tables: vec![
                TableProfile::new("User", 162_541, 0.72),
                TableProfile::new("Item", 59_047, 0.95),
            ],
        }
    }

    /// Criteo Terabyte click logs: 26 categorical features with wildly
    /// varying cardinalities; the big tables are extremely head-heavy
    /// (top 2 % ≈ 80 % of accesses). We model the seven tables the paper's
    /// Figure 6(d) legend names (0, 9, 10, 11, 19, 20, 21).
    pub fn criteo() -> Self {
        DatasetModel {
            name: "Criteo".to_owned(),
            tables: vec![
                TableProfile::new("Table 0", 7_912_889, 1.05),
                TableProfile::new("Table 9", 5_461_306, 1.10),
                TableProfile::new("Table 10", 3_067_956, 1.02),
                TableProfile::new("Table 11", 405_282, 0.95),
                TableProfile::new("Table 19", 2_202_608, 1.08),
                TableProfile::new("Table 20", 9_758_201, 1.12),
                TableProfile::new("Table 21", 7_539_664, 1.00),
            ],
        }
    }

    /// All four dataset models, in the paper's figure order.
    pub fn all() -> Vec<DatasetModel> {
        vec![
            Self::alibaba(),
            Self::kaggle_anime(),
            Self::movielens(),
            Self::criteo(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::ZipfSampler;

    #[test]
    fn sweep_order_matches_paper_figures() {
        let names: Vec<&str> = LocalityProfile::SWEEP.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["Random", "Low", "Medium", "High"]);
    }

    #[test]
    fn exponents_increase_with_locality() {
        let e: Vec<f64> = LocalityProfile::SWEEP
            .iter()
            .map(|p| p.zipf_exponent())
            .collect();
        assert!(e.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(e[0], 0.0);
    }

    #[test]
    fn custom_profile_carries_exponent() {
        let p = LocalityProfile::Custom(1.6);
        assert_eq!(p.zipf_exponent(), 1.6);
        assert_eq!(format!("{p}"), "Custom(s=1.6)");
        assert_eq!(format!("{}", LocalityProfile::High), "High");
    }

    #[test]
    fn anchor_point_low_matches_alibaba_quote() {
        // Paper §III-A: "for Alibaba User dataset, 2 % of embeddings only
        // account for 8.5 % of traffic".
        let ali = DatasetModel::alibaba();
        let user = &ali.tables[0];
        let z = ZipfSampler::new(user.rows, user.zipf_exponent);
        let share = z.top_share(0.02);
        assert!((share - 0.085).abs() < 0.04, "share {share}");
    }

    #[test]
    fn anchor_point_high_matches_criteo_quote() {
        // Paper §III-A: "in Criteo Ad Labs, 2 % of the embeddings account
        // for more than 80 % of all accesses".
        let criteo = DatasetModel::criteo();
        let big = &criteo.tables[0];
        let z = ZipfSampler::new(big.rows, big.zipf_exponent);
        assert!(z.top_share(0.02) > 0.74, "share {}", z.top_share(0.02));
    }

    #[test]
    fn all_datasets_have_tables() {
        let all = DatasetModel::all();
        assert_eq!(all.len(), 4);
        for d in &all {
            assert!(!d.tables.is_empty(), "{} has no tables", d.name);
            for t in &d.tables {
                assert!(t.rows > 0);
                assert!(t.zipf_exponent >= 0.0);
            }
        }
    }

    #[test]
    fn criteo_matches_figure6_legend() {
        let c = DatasetModel::criteo();
        assert_eq!(c.tables.len(), 7);
        assert_eq!(c.tables[0].name, "Table 0");
        assert_eq!(c.tables[6].name, "Table 21");
    }
}
