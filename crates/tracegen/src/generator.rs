//! Deterministic mini-batch trace generation.
//!
//! A [`TraceGenerator`] turns a [`TraceConfig`] into an endless stream of
//! [`SparseBatch`]es. Each table draws its lookups from an independent,
//! seeded RNG stream so that (a) runs are exactly reproducible, and (b) the
//! same trace can be regenerated for a second system to train on — which is
//! how the reproduction proves ScratchPipe performs identical updates to
//! the baseline.

use embeddings::{SparseBatch, TableBag};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::profiles::LocalityProfile;
use crate::scramble::Scrambler;
use crate::zipf::ZipfSampler;

/// Configuration of one synthetic trace.
///
/// The default mirrors the paper's default RecSys model (§V): 8 tables of
/// 10 M rows, 20 lookups per table per sample, batch size 2048.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of embedding tables.
    pub num_tables: usize,
    /// Rows per table.
    pub rows_per_table: u64,
    /// Embedding gathers per table per sample ("pooling factor").
    pub lookups_per_sample: usize,
    /// Samples per mini-batch.
    pub batch_size: usize,
    /// Locality regime shared by all tables.
    pub profile: LocalityProfile,
    /// Master seed; all per-table streams derive from it.
    pub seed: u64,
}

impl TraceConfig {
    /// The paper's default model configuration with the given profile.
    pub fn paper_default(profile: LocalityProfile) -> Self {
        TraceConfig {
            num_tables: 8,
            rows_per_table: 10_000_000,
            lookups_per_sample: 20,
            batch_size: 2048,
            profile,
            seed: 0x5C4A7C9,
        }
    }

    /// A scaled-down configuration for functional (real-arithmetic) runs.
    pub fn functional_default(profile: LocalityProfile) -> Self {
        TraceConfig {
            num_tables: 4,
            rows_per_table: 20_000,
            lookups_per_sample: 8,
            batch_size: 64,
            profile,
            seed: 0x5C4A7C9,
        }
    }

    /// Total sparse lookups one mini-batch performs across all tables.
    pub fn lookups_per_batch(&self) -> u64 {
        (self.num_tables * self.lookups_per_sample * self.batch_size) as u64
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::paper_default(LocalityProfile::Medium)
    }
}

/// Per-table sampling state.
#[derive(Debug)]
struct TableStream {
    sampler: ZipfSampler,
    scrambler: Scrambler,
    rng: StdRng,
}

/// Generates a deterministic stream of [`SparseBatch`]es.
///
/// # Example
///
/// ```
/// use tracegen::{LocalityProfile, TraceConfig, TraceGenerator};
///
/// let cfg = TraceConfig::functional_default(LocalityProfile::Medium);
/// let batches = TraceGenerator::new(cfg).take_batches(3);
/// assert_eq!(batches.len(), 3);
/// // Regenerating from the same config gives the identical trace.
/// let again = TraceGenerator::new(cfg).take_batches(3);
/// assert_eq!(batches, again);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    config: TraceConfig,
    tables: Vec<TableStream>,
    batches_emitted: u64,
}

impl TraceGenerator {
    /// Creates a generator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of the configuration is zero.
    pub fn new(config: TraceConfig) -> Self {
        assert!(config.num_tables > 0, "need at least one table");
        assert!(config.rows_per_table > 0, "tables must have rows");
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(config.lookups_per_sample > 0, "need at least one lookup");
        let tables = (0..config.num_tables)
            .map(|t| {
                let table_seed = config.seed.wrapping_add(0x9E37 * (t as u64 + 1));
                TableStream {
                    sampler: ZipfSampler::new(
                        config.rows_per_table,
                        config.profile.zipf_exponent(),
                    ),
                    scrambler: Scrambler::new(config.rows_per_table, table_seed),
                    rng: StdRng::seed_from_u64(table_seed),
                }
            })
            .collect();
        TraceGenerator {
            config,
            tables,
            batches_emitted: 0,
        }
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Number of batches produced so far.
    pub fn batches_emitted(&self) -> u64 {
        self.batches_emitted
    }

    /// Generates the next mini-batch.
    pub fn next_batch(&mut self) -> SparseBatch {
        let c = self.config;
        let bags = self
            .tables
            .iter_mut()
            .map(|stream| {
                let total = c.batch_size * c.lookups_per_sample;
                let mut ids = Vec::with_capacity(total);
                for _ in 0..total {
                    let rank = stream.sampler.sample(&mut stream.rng);
                    ids.push(stream.scrambler.apply(rank));
                }
                let offsets = (0..=c.batch_size)
                    .map(|s| (s * c.lookups_per_sample) as u32)
                    .collect();
                TableBag::new(ids, offsets)
            })
            .collect();
        self.batches_emitted += 1;
        SparseBatch::new(bags)
    }

    /// Generates `n` consecutive mini-batches.
    pub fn take_batches(mut self, n: usize) -> Vec<SparseBatch> {
        (0..n).map(|_| self.next_batch()).collect()
    }

    /// Answers "is this row ID among the `hot_rows` hottest rows of table
    /// `t`?" — the membership test of the static top-N embedding cache.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range or `id` exceeds the table size.
    pub fn is_hot(&self, t: usize, id: u64, hot_rows: u64) -> bool {
        self.tables[t].scrambler.invert(id) < hot_rows
    }

    /// The popularity rank of row `id` in table `t` (0 = hottest).
    pub fn rank_of(&self, t: usize, id: u64) -> u64 {
        self.tables[t].scrambler.invert(id)
    }

    /// The row IDs of the `n` hottest rows of table `t`, hottest first.
    pub fn hot_rows(&self, t: usize, n: u64) -> Vec<u64> {
        let s = &self.tables[t].scrambler;
        (0..n.min(self.config.rows_per_table))
            .map(|rank| s.apply(rank))
            .collect()
    }

    /// A detachable popularity oracle usable after the generator is gone —
    /// the membership test of a static top-N cache (Yin et al.).
    pub fn hot_oracle(&self) -> HotOracle {
        HotOracle {
            scramblers: self.tables.iter().map(|t| t.scrambler).collect(),
        }
    }
}

/// Answers popularity-rank queries for every table of a trace.
#[derive(Debug, Clone)]
pub struct HotOracle {
    scramblers: Vec<Scrambler>,
}

impl HotOracle {
    /// The popularity rank of row `id` in table `t` (0 = hottest).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range or `id` exceeds the table size.
    pub fn rank(&self, t: usize, id: u64) -> u64 {
        self.scramblers[t].invert(id)
    }

    /// True if `id` is among the `hot_rows` hottest rows of table `t`.
    pub fn is_hot(&self, t: usize, id: u64, hot_rows: u64) -> bool {
        self.rank(t, id) < hot_rows
    }

    /// Number of tables covered.
    pub fn num_tables(&self) -> usize {
        self.scramblers.len()
    }
}

impl Iterator for TraceGenerator {
    type Item = SparseBatch;

    fn next(&mut self) -> Option<SparseBatch> {
        Some(self.next_batch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(profile: LocalityProfile) -> TraceConfig {
        TraceConfig {
            num_tables: 3,
            rows_per_table: 500,
            lookups_per_sample: 4,
            batch_size: 16,
            profile,
            seed: 7,
        }
    }

    #[test]
    fn batch_shape_matches_config() {
        let cfg = small_cfg(LocalityProfile::Medium);
        let mut gen = TraceGenerator::new(cfg);
        let b = gen.next_batch();
        assert_eq!(b.num_tables(), 3);
        assert_eq!(b.batch_size(), 16);
        for (_, bag) in b.bags() {
            assert_eq!(bag.total_lookups(), 64);
            assert!(bag.max_id().unwrap() < 500);
        }
        assert_eq!(gen.batches_emitted(), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_cfg(LocalityProfile::High);
        let a = TraceGenerator::new(cfg).take_batches(5);
        let b = TraceGenerator::new(cfg).take_batches(5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_cfg(LocalityProfile::High);
        let a = TraceGenerator::new(cfg).take_batches(2);
        cfg.seed = 8;
        let b = TraceGenerator::new(cfg).take_batches(2);
        assert_ne!(a, b);
    }

    #[test]
    fn tables_draw_independent_streams() {
        let cfg = small_cfg(LocalityProfile::Medium);
        let b = TraceGenerator::new(cfg).take_batches(1).remove(0);
        assert_ne!(b.bag(0).ids(), b.bag(1).ids());
    }

    #[test]
    fn high_locality_concentrates_traffic() {
        let n_batches = 30;
        let count_unique = |p| {
            let cfg = small_cfg(p);
            let batches = TraceGenerator::new(cfg).take_batches(n_batches);
            let mut ids: Vec<u64> = batches
                .iter()
                .flat_map(|b| b.bag(0).ids().iter().copied())
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        let uniform = count_unique(LocalityProfile::Random);
        let high = count_unique(LocalityProfile::High);
        assert!(
            high < uniform * 3 / 4,
            "high locality should touch far fewer unique rows: {high} vs {uniform}"
        );
    }

    #[test]
    fn hot_set_oracle_agrees_with_observed_frequency() {
        // Rows flagged hot must actually receive a majority of accesses
        // under the High profile.
        let cfg = TraceConfig {
            num_tables: 1,
            rows_per_table: 10_000,
            lookups_per_sample: 8,
            batch_size: 64,
            profile: LocalityProfile::High,
            seed: 3,
        };
        let mut gen = TraceGenerator::new(cfg);
        let hot_rows = 200; // top 2 %
        let mut hot_hits = 0u64;
        let mut total = 0u64;
        for _ in 0..50 {
            let b = gen.next_batch();
            for &id in b.bag(0).ids() {
                total += 1;
                if gen.is_hot(0, id, hot_rows) {
                    hot_hits += 1;
                }
            }
        }
        let share = hot_hits as f64 / total as f64;
        assert!(share > 0.55, "top-2% share under High locality: {share}");
    }

    #[test]
    fn hot_rows_listing_matches_oracle() {
        let cfg = small_cfg(LocalityProfile::Medium);
        let gen = TraceGenerator::new(cfg);
        let hot = gen.hot_rows(1, 10);
        assert_eq!(hot.len(), 10);
        for &id in &hot {
            assert!(gen.is_hot(1, id, 10));
        }
        assert_eq!(gen.rank_of(1, hot[0]), 0);
        assert_eq!(gen.rank_of(1, hot[9]), 9);
    }

    #[test]
    fn iterator_interface_works() {
        let cfg = small_cfg(LocalityProfile::Low);
        let batches: Vec<_> = TraceGenerator::new(cfg).take(4).collect();
        assert_eq!(batches.len(), 4);
    }

    #[test]
    fn paper_default_matches_methodology() {
        let cfg = TraceConfig::paper_default(LocalityProfile::High);
        assert_eq!(cfg.num_tables, 8);
        assert_eq!(cfg.rows_per_table, 10_000_000);
        assert_eq!(cfg.lookups_per_sample, 20);
        assert_eq!(cfg.batch_size, 2048);
        assert_eq!(cfg.lookups_per_batch(), 327_680);
    }

    #[test]
    #[should_panic(expected = "need at least one table")]
    fn zero_tables_rejected() {
        let mut cfg = small_cfg(LocalityProfile::Low);
        cfg.num_tables = 0;
        let _ = TraceGenerator::new(cfg);
    }
}
