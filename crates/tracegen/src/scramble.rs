//! Seeded bijective permutation of row IDs.
//!
//! The Zipf sampler produces *ranks* — rank 0 is the hottest. Real tables
//! do not store their popular rows contiguously, so traces map ranks
//! through a bijection of `[0, n)` before emitting them as row IDs. The
//! bijection is an affine permutation `id = (a·rank + b) mod n` with
//! `gcd(a, n) = 1`, which is invertible (needed to answer "what is this
//! row's popularity rank?" — the membership test of the static top-N cache
//! of Yin et al. reproduced in the `systems` crate).

use serde::{Deserialize, Serialize};

/// An invertible affine permutation of `[0, n)`.
///
/// # Example
///
/// ```
/// use tracegen::Scrambler;
///
/// let s = Scrambler::new(1000, 42);
/// let id = s.apply(0); // where the hottest rank lives
/// assert_eq!(s.invert(id), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scrambler {
    n: u64,
    a: u64,
    a_inv: u64,
    b: u64,
}

impl Scrambler {
    /// Creates a permutation of `[0, n)` derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        // Derive a multiplier from the seed; ensure it is coprime with n.
        let mut a = splitmix(seed) % n;
        if a == 0 {
            a = 1;
        }
        while gcd(a, n) != 1 {
            a += 1;
            if a >= n {
                a = 1;
            }
        }
        let b = splitmix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)) % n;
        let a_inv = mod_inverse(a, n);
        Scrambler { n, a, a_inv, b }
    }

    /// The identity permutation (useful for tests and for deliberately
    /// clustered hot sets).
    pub fn identity(n: u64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        Scrambler {
            n,
            a: 1,
            a_inv: 1,
            b: 0,
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Maps a popularity rank to a row ID.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n`.
    pub fn apply(&self, rank: u64) -> u64 {
        assert!(rank < self.n, "rank {rank} out of domain {}", self.n);
        ((self.a as u128 * rank as u128 + self.b as u128) % self.n as u128) as u64
    }

    /// Maps a row ID back to its popularity rank.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n`.
    pub fn invert(&self, id: u64) -> u64 {
        assert!(id < self.n, "id {id} out of domain {}", self.n);
        let shifted = (id + self.n - self.b % self.n) % self.n;
        ((self.a_inv as u128 * shifted as u128) % self.n as u128) as u64
    }
}

/// SplitMix64 — a tiny, high-quality seed scrambler.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular inverse of `a` modulo `n` via the extended Euclid algorithm.
///
/// # Panics
///
/// Panics if `gcd(a, n) != 1`.
fn mod_inverse(a: u64, n: u64) -> u64 {
    let (mut old_r, mut r) = (a as i128, n as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    assert_eq!(old_r, 1, "not coprime: gcd({a}, {n}) != 1");
    (old_s.rem_euclid(n as i128)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn permutation_is_bijective_small() {
        for n in [1u64, 2, 7, 100, 101, 4096] {
            let s = Scrambler::new(n, 5);
            let images: HashSet<u64> = (0..n).map(|r| s.apply(r)).collect();
            assert_eq!(images.len() as u64, n, "n={n}");
        }
    }

    #[test]
    fn invert_round_trips() {
        let s = Scrambler::new(10_000_019, 77); // prime-ish large domain
        for rank in [0u64, 1, 999, 10_000_018, 1234567] {
            assert_eq!(s.invert(s.apply(rank)), rank);
        }
        for id in [0u64, 42, 10_000_000] {
            assert_eq!(s.apply(s.invert(id)), id);
        }
    }

    #[test]
    fn identity_maps_to_self() {
        let s = Scrambler::identity(1000);
        for v in [0u64, 1, 999] {
            assert_eq!(s.apply(v), v);
            assert_eq!(s.invert(v), v);
        }
    }

    #[test]
    fn different_seeds_give_different_permutations() {
        let a = Scrambler::new(1_000_000, 1);
        let b = Scrambler::new(1_000_000, 2);
        let differs = (0..100u64).any(|r| a.apply(r) != b.apply(r));
        assert!(differs);
    }

    #[test]
    fn hot_ranks_are_spread_out() {
        // The first 100 ranks should not map to a narrow ID band.
        let n = 1_000_000u64;
        let s = Scrambler::new(n, 9);
        let ids: Vec<u64> = (0..100).map(|r| s.apply(r)).collect();
        let spread = ids.iter().max().unwrap() - ids.iter().min().unwrap();
        assert!(spread > n / 4, "spread {spread}");
    }

    #[test]
    fn composite_domain_sizes_work() {
        // n = 2^20 forces the coprime search to skip even multipliers.
        let n = 1u64 << 20;
        let s = Scrambler::new(n, 1234);
        let images: HashSet<u64> = (0..1000).map(|r| s.apply(r)).collect();
        assert_eq!(images.len(), 1000);
        assert_eq!(s.invert(s.apply(55)), 55);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_rank_panics() {
        let s = Scrambler::new(10, 1);
        let _ = s.apply(10);
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn empty_domain_rejected() {
        let _ = Scrambler::new(0, 1);
    }
}
