//! Trace statistics: access-count curves and cache hit-rate curves.
//!
//! These regenerate the paper's characterization figures:
//!
//! * **Figure 3** — sorted access counts of table rows (the power-law
//!   curves): [`AccessHistogram::sorted_counts`].
//! * **Figure 6** — static-cache hit rate as a function of cache size:
//!   [`AccessHistogram::hit_rate_curve`]. A static top-N cache by
//!   definition hits exactly on the N most popular rows, so the oracle
//!   hit rate at size N is the share of accesses falling on the top-N
//!   rows by count.

use embeddings::TableBag;
use serde::{Deserialize, Serialize};

/// Per-row access counts of one embedding table over a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl AccessHistogram {
    /// Creates an empty histogram over `rows` rows.
    pub fn new(rows: u64) -> Self {
        AccessHistogram {
            counts: vec![0; rows as usize],
            total: 0,
        }
    }

    /// Records every lookup of `bag`.
    ///
    /// # Panics
    ///
    /// Panics if an ID exceeds the configured row count.
    pub fn record_bag(&mut self, bag: &TableBag) {
        for &id in bag.ids() {
            self.counts[id as usize] += 1;
            self.total += 1;
        }
    }

    /// Records a single row access.
    pub fn record(&mut self, id: u64) {
        self.counts[id as usize] += 1;
        self.total += 1;
    }

    /// Total recorded accesses.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Number of rows accessed at least once.
    pub fn touched_rows(&self) -> u64 {
        self.counts.iter().filter(|&&c| c > 0).count() as u64
    }

    /// Access counts sorted descending — the y-values of Figure 3.
    pub fn sorted_counts(&self) -> Vec<u64> {
        let mut v = self.counts.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Share of all accesses captured by the `fraction` most-accessed rows
    /// (an oracle static cache of that size). `fraction` is clamped to
    /// `[0, 1]`.
    pub fn top_fraction_share(&self, fraction: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let k = ((fraction.clamp(0.0, 1.0) * self.counts.len() as f64).ceil()) as usize;
        let sorted = self.sorted_counts();
        let head: u64 = sorted.iter().take(k).sum();
        head as f64 / self.total as f64
    }

    /// Hit rate of an oracle static top-N cache at each of the given cache
    /// sizes (as fractions of the table). Returns `(fraction, hit_rate)`
    /// pairs — one Figure 6 curve.
    pub fn hit_rate_curve(&self, fractions: &[f64]) -> Vec<(f64, f64)> {
        // Sort once, prefix-sum, then answer each query in O(1).
        let sorted = self.sorted_counts();
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0u64);
        for &c in &sorted {
            prefix.push(prefix.last().expect("non-empty") + c);
        }
        fractions
            .iter()
            .map(|&f| {
                let k = ((f.clamp(0.0, 1.0) * sorted.len() as f64).ceil()) as usize;
                let hits = prefix[k.min(sorted.len())];
                let rate = if self.total == 0 {
                    0.0
                } else {
                    hits as f64 / self.total as f64
                };
                (f, rate)
            })
            .collect()
    }

    /// Gini-style skew summary in `[0, 1]`: 0 for perfectly uniform access,
    /// approaching 1 when a single row absorbs all traffic. Used by tests
    /// to rank locality regimes.
    pub fn skewness(&self) -> f64 {
        if self.total == 0 || self.counts.len() < 2 {
            return 0.0;
        }
        let sorted = self.sorted_counts(); // descending
        let n = sorted.len() as f64;
        // Gini coefficient over the (ascending) count distribution.
        let mut cum = 0.0f64;
        let mut weighted = 0.0f64;
        for (i, &c) in sorted.iter().rev().enumerate() {
            cum += c as f64;
            weighted += cum;
            let _ = i;
        }
        let mean_cum = weighted / n;
        1.0 - 2.0 * (mean_cum / self.total as f64) + 1.0 / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};
    use crate::profiles::LocalityProfile;

    fn histogram_for(profile: LocalityProfile, batches: usize) -> AccessHistogram {
        let cfg = TraceConfig {
            num_tables: 1,
            rows_per_table: 2_000,
            lookups_per_sample: 8,
            batch_size: 64,
            profile,
            seed: 5,
        };
        let mut gen = TraceGenerator::new(cfg);
        let mut h = AccessHistogram::new(cfg.rows_per_table);
        for _ in 0..batches {
            h.record_bag(TraceGenerator::next_batch(&mut gen).bag(0));
        }
        h
    }

    #[test]
    fn counting_is_exact() {
        let mut h = AccessHistogram::new(10);
        h.record(3);
        h.record(3);
        h.record(7);
        assert_eq!(h.total(), 3);
        assert_eq!(h.touched_rows(), 2);
        assert_eq!(h.sorted_counts()[0], 2);
        assert_eq!(h.sorted_counts()[1], 1);
        assert_eq!(h.sorted_counts()[2], 0);
    }

    #[test]
    fn figure3_shape_power_law_has_long_tail() {
        let h = histogram_for(LocalityProfile::High, 40);
        let sorted = h.sorted_counts();
        // Head must tower over the median row.
        let head = sorted[0];
        let median = sorted[sorted.len() / 2];
        assert!(head > 20 * median.max(1), "head {head} vs median {median}");
    }

    #[test]
    fn figure3_random_trace_is_flat() {
        let h = histogram_for(LocalityProfile::Random, 40);
        let sorted = h.sorted_counts();
        let head = sorted[0] as f64;
        let median = sorted[sorted.len() / 2].max(1) as f64;
        assert!(head / median < 5.0, "head {head} vs median {median}");
    }

    #[test]
    fn hit_rate_curve_is_monotone_and_saturates() {
        let h = histogram_for(LocalityProfile::Medium, 30);
        let curve = h.hit_rate_curve(&[0.0, 0.02, 0.1, 0.5, 1.0]);
        assert_eq!(curve[0].1, 0.0);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure6_criteo_like_saturates_early_alibaba_like_late() {
        // The defining contrast of Figure 6: high-locality datasets reach
        // high hit rates with small caches; low-locality ones do not.
        let high = histogram_for(LocalityProfile::High, 30);
        let low = histogram_for(LocalityProfile::Low, 30);
        let h10 = high.hit_rate_curve(&[0.10])[0].1;
        let l10 = low.hit_rate_curve(&[0.10])[0].1;
        assert!(h10 > l10 + 0.2, "high {h10} vs low {l10}");
    }

    #[test]
    fn top_fraction_share_matches_curve() {
        let h = histogram_for(LocalityProfile::Medium, 10);
        let a = h.top_fraction_share(0.05);
        let b = h.hit_rate_curve(&[0.05])[0].1;
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn skewness_orders_locality_regimes() {
        let mut last = -1.0;
        for p in LocalityProfile::SWEEP {
            let h = histogram_for(p, 20);
            let s = h.skewness();
            assert!(
                s > last,
                "skewness must increase with locality: {p} gave {s} after {last}"
            );
            last = s;
        }
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = AccessHistogram::new(100);
        assert_eq!(h.total(), 0);
        assert_eq!(h.top_fraction_share(0.5), 0.0);
        assert_eq!(h.skewness(), 0.0);
        let curve = h.hit_rate_curve(&[0.1, 1.0]);
        assert!(curve.iter().all(|&(_, r)| r == 0.0));
    }
}
