//! Umbrella crate for the ScratchPipe reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See `README.md` for a workspace tour, crate map and
//! the figure-binary inventory.

pub use dlrm;
pub use embeddings;
pub use memsim;
pub use scratchpipe;
pub use systems;
pub use tracegen;
