//! Umbrella crate for the ScratchPipe reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See `README.md` for a tour and `DESIGN.md` for the
//! system inventory.

pub use dlrm;
pub use embeddings;
pub use memsim;
pub use scratchpipe;
pub use systems;
pub use tracegen;
